"""Parse-tree nodes for SQL statements.

Scalar expressions reuse :mod:`repro.expr.nodes`; the only SQL-specific
expression node is :class:`SubqueryExpr`, which wraps a nested
:class:`SelectStatement` used as a scalar value. The QGM builder replaces
it with a column reference over a new quantifier.

All nodes are frozen dataclasses with tuple-valued collections so that
statements (and therefore subquery expressions) are hashable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.nodes import Expr


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list: an expression plus optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A base-table reference in FROM, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTableRef:
    """A parenthesized subquery in FROM: ``(SELECT ...) [AS alias]``.

    The alias may be omitted (the paper's Q8 does so); the binder then
    assigns a generated one.
    """

    query: "SelectStatement"
    alias: str | None

    @property
    def binding_name(self) -> str | None:
        return self.alias


FromItem = TableRef | DerivedTableRef


@dataclass(frozen=True)
class SimpleGrouping:
    """A plain GROUP BY item: one grouping expression."""

    expr: Expr


@dataclass(frozen=True)
class Rollup:
    """``ROLLUP(e1, ..., en)``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Cube:
    """``CUBE(e1, ..., en)``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class GroupingSets:
    """``GROUPING SETS((..), (..), ())`` — each member set is a tuple of
    grouping expressions; the empty tuple is the grand total."""

    sets: tuple[tuple[Expr, ...], ...]


GroupingElement = SimpleGrouping | Rollup | Cube | GroupingSets


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key; ``expr`` may also be a select-list alias name."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A (possibly nested) SELECT block."""

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...]
    where: Expr | None = None
    group_by: tuple[GroupingElement, ...] = ()
    having: Expr | None = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    select_star: bool = False
    limit: int | None = None

    def has_grouping(self) -> bool:
        return bool(self.group_by)


@dataclass(frozen=True)
class UnionAll:
    """``select ... UNION ALL select ...`` — bag union of uniform
    branches. ORDER BY/LIMIT are not supported around a union."""

    branches: tuple["SelectStatement", ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("UNION ALL needs at least two branches")


QueryExpression = SelectStatement | UnionAll


@dataclass(frozen=True)
class SubqueryExpr(Expr):
    """A scalar subquery used inside an expression.

    Only uncorrelated subqueries are supported (the paper excludes
    correlated queries); the binder enforces this.
    """

    query: SelectStatement

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def __repr__(self) -> str:
        return "Subquery(...)"
