"""Deterministic synthetic data for the paper's credit-card schema.

The generator reproduces the data characteristics the paper's Section 1.1
argues from: "the average customer performs a few hundred transactions
per year, most of them within the same city", which makes AST1 roughly a
hundred times smaller than ``Trans``. Everything is seeded, so every test
and benchmark run sees identical data.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

US_STATES = ["CA", "NY", "TX", "WA", "IL", "MA", "FL", "GA", "CO", "OR"]
COUNTRIES = ["USA", "France", "Germany", "Japan", "Brazil"]
PRODUCT_GROUPS = [
    "TV", "Radio", "Laptop", "Phone", "Camera", "Tablet", "Printer",
    "Monitor", "Speaker", "Console",
]
STATUSES = ["gold", "silver", "bronze"]


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic workload; defaults give ~60k transactions."""

    seed: int = 2000
    customers: int = 60
    accounts_per_customer: int = 2
    cities: int = 60
    product_groups: int = 10
    years: tuple[int, ...] = (1990, 1991, 1992)
    #: "the average customer performs a few hundred transactions per year"
    transactions_per_account_year: int = 240
    #: "most of them within the same city" — this affinity makes AST1
    #: roughly two orders of magnitude smaller than Trans
    home_city_affinity: float = 0.99

    def scaled(self, factor: float) -> "GeneratorConfig":
        return GeneratorConfig(
            seed=self.seed,
            customers=max(1, int(self.customers * factor)),
            accounts_per_customer=self.accounts_per_customer,
            cities=self.cities,
            product_groups=self.product_groups,
            years=self.years,
            transactions_per_account_year=self.transactions_per_account_year,
            home_city_affinity=self.home_city_affinity,
        )


def populate_credit_db(database, config: GeneratorConfig | None = None) -> dict[str, int]:
    """Fill a Database built on ``credit_card_catalog`` with synthetic
    rows; returns row counts per table."""
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)

    pgroups = [
        (i + 1, PRODUCT_GROUPS[i % len(PRODUCT_GROUPS)])
        for i in range(config.product_groups)
    ]
    database.load("PGroup", pgroups)

    locations = []
    for lid in range(1, config.cities + 1):
        country = COUNTRIES[0] if rng.random() < 0.7 else rng.choice(COUNTRIES[1:])
        state = rng.choice(US_STATES) if country == "USA" else "XX"
        locations.append((lid, f"City{lid}", state, country))
    database.load("Loc", locations)

    customers = []
    for cid in range(1, config.customers + 1):
        customers.append((cid, f"Customer{cid}", rng.choice(US_STATES)))
    database.load("Cust", customers)

    accounts = []
    home_city: dict[int, int] = {}
    aid = 0
    for cid in range(1, config.customers + 1):
        for _ in range(config.accounts_per_customer):
            aid += 1
            accounts.append((aid, cid, rng.choice(STATUSES)))
            home_city[aid] = rng.randint(1, config.cities)
    database.load("Acct", accounts)

    transactions = []
    tid = 0
    for account_id in range(1, aid + 1):
        for year in config.years:
            for _ in range(config.transactions_per_account_year):
                tid += 1
                if rng.random() < config.home_city_affinity:
                    flid = home_city[account_id]
                else:
                    flid = rng.randint(1, config.cities)
                date = datetime.date(
                    year, rng.randint(1, 12), rng.randint(1, 28)
                )
                qty = rng.randint(1, 5)
                price = round(rng.uniform(5.0, 900.0), 2)
                disc = round(rng.choice([0.0, 0.05, 0.1, 0.15, 0.2, 0.25]), 2)
                transactions.append(
                    (
                        tid,
                        rng.randint(1, config.product_groups),
                        flid,
                        account_id,
                        date,
                        qty,
                        price,
                        disc,
                    )
                )
    database.load("Trans", transactions)
    return {
        "PGroup": len(pgroups),
        "Loc": len(locations),
        "Cust": len(customers),
        "Acct": len(accounts),
        "Trans": len(transactions),
    }


def small_config() -> GeneratorConfig:
    """A configuration small enough for unit tests (~2k transactions)."""
    return GeneratorConfig(
        customers=10,
        accounts_per_customer=2,
        cities=12,
        transactions_per_account_year=12,
        years=(1990, 1991, 1992),
    )


def bench_config(scale: float = 1.0) -> GeneratorConfig:
    """The benchmark configuration (~57k transactions at scale 1.0);
    override via the REPRO_SCALE environment variable."""
    return GeneratorConfig().scaled(scale)
