"""A second "customer application": web-analytics reporting.

The paper reports AST wins "with a number of customer applications"
beyond TPC-D. This workload models the other archetypal summary-table
consumer: a page-view fact table with page and visitor dimensions, a
reporting dashboard, and two join ASTs (the summaries themselves join
dimension tables — exercising matching where the AST has *more* joins
than some queries and fewer than others).
"""

from __future__ import annotations

import datetime
import random

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType
from repro.engine.database import Database

SECTIONS = ["news", "sports", "shop", "forum", "video", "docs"]
COUNTRIES = ["USA", "Germany", "Japan", "Brazil", "India"]
BROWSERS = ["chrome", "firefox", "safari", "edge"]


def web_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(
        TableSchema(
            "Page",
            [
                Column("pid", DataType.INTEGER),
                Column("path", DataType.STRING),
                Column("section", DataType.STRING),
            ],
            keys=[UniqueKey(("pid",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Visitor",
            [
                Column("vid", DataType.INTEGER),
                Column("country", DataType.STRING),
                Column("browser", DataType.STRING),
            ],
            keys=[UniqueKey(("vid",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "PageView",
            [
                Column("pvid", DataType.INTEGER),
                Column("fpid", DataType.INTEGER),
                Column("fvid", DataType.INTEGER),
                Column("vdate", DataType.DATE),
                Column("dwell", DataType.INTEGER),
                Column("bytes", DataType.FLOAT),
            ],
            keys=[UniqueKey(("pvid",), is_primary=True)],
        )
    )
    catalog.add_foreign_key(ForeignKeyConstraint("PageView", ("fpid",), "Page", ("pid",)))
    catalog.add_foreign_key(
        ForeignKeyConstraint("PageView", ("fvid",), "Visitor", ("vid",))
    )
    return catalog


def build_web_db(views: int = 40000, seed: int = 20000514) -> Database:
    rng = random.Random(seed)
    database = Database(web_catalog())
    pages = max(20, views // 400)
    visitors = max(50, views // 200)
    database.load(
        "Page",
        [
            (pid, f"/{rng.choice(SECTIONS)}/p{pid}", rng.choice(SECTIONS))
            for pid in range(1, pages + 1)
        ],
    )
    database.load(
        "Visitor",
        [
            (vid, rng.choice(COUNTRIES), rng.choice(BROWSERS))
            for vid in range(1, visitors + 1)
        ],
    )
    rows = []
    for pvid in range(1, views + 1):
        rows.append(
            (
                pvid,
                rng.randint(1, pages),
                rng.randint(1, visitors),
                datetime.date(
                    rng.choice([1999, 2000]), rng.randint(1, 12), rng.randint(1, 28)
                ),
                rng.randint(1, 600),
                float(rng.randint(1, 500) * 1024),
            )
        )
    database.load("PageView", rows)
    return database


#: the two summary tables behind the dashboard
SECTION_AST = """
select section, year(vdate) as year, month(vdate) as month,
       count(*) as views, sum(dwell) as total_dwell, sum(bytes) as traffic
from PageView, Page
where fpid = pid
group by section, year(vdate), month(vdate)
"""

COUNTRY_AST = """
select country, browser, year(vdate) as year, month(vdate) as month,
       count(*) as views, count(distinct fvid) as uniques
from PageView, Visitor
where fvid = vid
group by country, browser, year(vdate), month(vdate)
"""


def install_web_asts(database: Database) -> list[str]:
    database.create_summary_table("SectionAst", SECTION_AST)
    database.create_summary_table("CountryAst", COUNTRY_AST)
    return ["SectionAst", "CountryAst"]


QUERIES: dict[str, str] = {
    # monthly traffic per section
    "section_monthly": """
        select section, year(vdate) as year, month(vdate) as month,
               count(*) as views, sum(bytes) as traffic
        from PageView, Page where fpid = pid
        group by section, year(vdate), month(vdate)
    """,
    # yearly rollup re-derived from the monthly AST
    "section_yearly": """
        select section, year(vdate) as year,
               count(*) as views, sum(dwell) as total_dwell
        from PageView, Page where fpid = pid
        group by section, year(vdate)
    """,
    # engagement: average dwell per section (AVG via SUM/COUNT rules)
    "section_engagement": """
        select section, avg(dwell) as avg_dwell
        from PageView, Page where fpid = pid
        group by section
    """,
    # country/browser views for one year, with HAVING
    "country_browser": """
        select country, browser, count(*) as views
        from PageView, Visitor
        where fvid = vid and year(vdate) = 2000
        group by country, browser
        having count(*) > 10
    """,
    # top-line totals for the year 2000
    "totals_2000": """
        select count(*) as views, sum(bytes) as traffic
        from PageView, Page
        where fpid = pid and year(vdate) = 2000
    """,
}
