"""Synthetic workloads: the paper's credit-card schema and a mini TPC-D."""

from repro.workloads.datagen import (
    GeneratorConfig,
    bench_config,
    populate_credit_db,
    small_config,
)
from repro.workloads.tpcd import QUERIES, build_tpcd_db, install_asts, tpcd_catalog

__all__ = [
    "GeneratorConfig",
    "QUERIES",
    "bench_config",
    "build_tpcd_db",
    "install_asts",
    "populate_credit_db",
    "small_config",
    "tpcd_catalog",
]

from repro.workloads.webmetrics import (  # noqa: E402
    build_web_db,
    install_web_asts,
    web_catalog,
)

__all__ += ["build_web_db", "install_web_asts", "web_catalog"]
