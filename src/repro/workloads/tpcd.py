"""A miniature TPC-D-like workload.

The paper's Section 8 reports "dramatic improvements in query response
times both with TPC-D queries and with a number of customer applications"
using a small number of ASTs. TPC-D data and the DB2 testbed are not
available here, so we build the closest synthetic equivalent: a scaled-
down order/lineitem star schema, a deterministic generator, a set of
decision-support queries shaped like TPC-D Q1/Q3/Q5/Q6, and two summary
tables that cover them. Shape — who wins and by roughly what factor — is
what the benchmark reproduces.
"""

from __future__ import annotations

import datetime
import random

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType
from repro.engine.database import Database

NATIONS = ["USA", "FRANCE", "GERMANY", "JAPAN", "BRAZIL", "INDIA", "CANADA"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW", "5-NONE"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["O", "F"]


def tpcd_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(
        TableSchema(
            "Customer",
            [
                Column("custkey", DataType.INTEGER),
                Column("cname", DataType.STRING),
                Column("nation", DataType.STRING),
            ],
            keys=[UniqueKey(("custkey",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Orders",
            [
                Column("orderkey", DataType.INTEGER),
                Column("ocustkey", DataType.INTEGER),
                Column("orderdate", DataType.DATE),
                Column("orderpriority", DataType.STRING),
            ],
            keys=[UniqueKey(("orderkey",), is_primary=True)],
        )
    )
    catalog.add_table(
        TableSchema(
            "Lineitem",
            [
                Column("lorderkey", DataType.INTEGER),
                Column("linenumber", DataType.INTEGER),
                Column("quantity", DataType.INTEGER),
                Column("extendedprice", DataType.FLOAT),
                Column("discount", DataType.FLOAT),
                Column("tax", DataType.FLOAT),
                Column("returnflag", DataType.STRING),
                Column("linestatus", DataType.STRING),
                Column("shipdate", DataType.DATE),
            ],
            keys=[UniqueKey(("lorderkey", "linenumber"), is_primary=True)],
        )
    )
    catalog.add_foreign_key(
        ForeignKeyConstraint("Orders", ("ocustkey",), "Customer", ("custkey",))
    )
    catalog.add_foreign_key(
        ForeignKeyConstraint("Lineitem", ("lorderkey",), "Orders", ("orderkey",))
    )
    return catalog


def build_tpcd_db(orders: int = 2000, seed: int = 19980401) -> Database:
    """A populated mini TPC-D database (~4 lineitems per order)."""
    rng = random.Random(seed)
    database = Database(tpcd_catalog())

    customer_count = max(10, orders // 10)
    database.load(
        "Customer",
        [
            (ck, f"Customer#{ck}", rng.choice(NATIONS))
            for ck in range(1, customer_count + 1)
        ],
    )
    order_rows = []
    line_rows = []
    for orderkey in range(1, orders + 1):
        orderdate = datetime.date(
            rng.choice([1995, 1996, 1997, 1998]),
            rng.randint(1, 12),
            rng.randint(1, 28),
        )
        order_rows.append(
            (
                orderkey,
                rng.randint(1, customer_count),
                orderdate,
                rng.choice(PRIORITIES),
            )
        )
        for linenumber in range(1, rng.randint(2, 6)):
            ship = orderdate + datetime.timedelta(days=rng.randint(1, 90))
            line_rows.append(
                (
                    orderkey,
                    linenumber,
                    rng.randint(1, 50),
                    round(rng.uniform(100.0, 50000.0), 2),
                    round(rng.choice([0.0, 0.02, 0.04, 0.06, 0.08, 0.1]), 2),
                    round(rng.choice([0.0, 0.02, 0.04, 0.06, 0.08]), 2),
                    rng.choice(RETURN_FLAGS),
                    rng.choice(LINE_STATUSES),
                    ship,
                )
            )
    database.load("Orders", order_rows)
    database.load("Lineitem", line_rows)
    return database


#: The two summary tables the suite uses (a "small number of ASTs").
PRICING_AST = """
select returnflag, linestatus, year(shipdate) as year, month(shipdate) as month,
       count(*) as cnt,
       sum(quantity) as sum_qty,
       sum(extendedprice) as sum_base,
       sum(extendedprice * (1 - discount)) as revenue
from Lineitem
group by returnflag, linestatus, year(shipdate), month(shipdate)
"""

NATION_AST = """
select nation, orderpriority, year(orderdate) as year,
       count(*) as cnt,
       sum(extendedprice * (1 - discount)) as revenue
from Lineitem, Orders, Customer
where lorderkey = orderkey and ocustkey = custkey
group by nation, orderpriority, year(orderdate)
"""


def install_asts(database: Database) -> list[str]:
    database.create_summary_table("PricingAst", PRICING_AST)
    database.create_summary_table("NationAst", NATION_AST)
    return ["PricingAst", "NationAst"]


#: Decision-support queries shaped like TPC-D Q1 / Q3 / Q5 / Q6.
QUERIES: dict[str, str] = {
    # Q1: pricing summary report (aggregates by flag/status up to a date)
    "q1_pricing": """
        select returnflag, linestatus,
               sum(quantity) as sum_qty,
               sum(extendedprice) as sum_base,
               sum(extendedprice * (1 - discount)) as revenue,
               count(*) as cnt
        from Lineitem
        where year(shipdate) <= 1997
        group by returnflag, linestatus
    """,
    # Q3-like: revenue per priority and year
    "q3_priority": """
        select orderpriority, year, sum(revenue) as revenue
        from (select nation, orderpriority, year(orderdate) as year,
                     sum(extendedprice * (1 - discount)) as revenue
              from Lineitem, Orders, Customer
              where lorderkey = orderkey and ocustkey = custkey
              group by nation, orderpriority, year(orderdate)) as t
        group by orderpriority, year
    """,
    # Q5-like: revenue per nation for one year
    "q5_nation": """
        select nation, sum(extendedprice * (1 - discount)) as revenue
        from Lineitem, Orders, Customer
        where lorderkey = orderkey and ocustkey = custkey
              and year(orderdate) = 1996
        group by nation
    """,
    # Q6-like: total discounted revenue in a time window
    "q6_forecast": """
        select sum(extendedprice * (1 - discount)) as revenue, count(*) as cnt
        from Lineitem
        where year(shipdate) = 1996
    """,
    # monthly trend over the pricing cube
    "monthly_trend": """
        select year(shipdate) as year, month(shipdate) as month,
               sum(extendedprice * (1 - discount)) as revenue
        from Lineitem
        group by year(shipdate), month(shipdate)
    """,
}
