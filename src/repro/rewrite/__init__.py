"""Query rewriting over summary tables, plus the cost-based planner."""

from repro.rewrite.rewriter import AppliedRewrite, RewriteResult, apply_match, rewrite_query

__all__ = ["AppliedRewrite", "RewriteResult", "apply_match", "rewrite_query"]
