"""Query rewriting over summary tables, plus the cost-based planner and
the matching fast path (AST candidate index + rewrite decision cache)."""

from repro.rewrite.cache import RewriteCache, RewriteStats
from repro.rewrite.index import (
    SummaryIndex,
    SummarySignature,
    graph_signature,
    prune_candidates,
    summary_signature,
)
from repro.rewrite.rewriter import AppliedRewrite, RewriteResult, apply_match, rewrite_query

__all__ = [
    "AppliedRewrite",
    "RewriteCache",
    "RewriteResult",
    "RewriteStats",
    "SummaryIndex",
    "SummarySignature",
    "apply_match",
    "graph_signature",
    "prune_candidates",
    "rewrite_query",
    "summary_signature",
]
