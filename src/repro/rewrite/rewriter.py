"""Query rewriting: apply a match to reroute a query over an AST.

Given a match between a query box E and an AST's root box, the rewrite
splices the match's compensation chain onto a scan of the materialized
summary table and re-points E's consumers at the chain top. Rewriting is
iterative (Section 7): after a successful rewrite the result is matched
against the remaining ASTs, so one query can combine several summary
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asts.definition import SummaryTable
from repro.expr.nodes import ColumnRef
from repro.matching.framework import MAIN, MatchResult, rebase_chain
from repro.matching.navigator import match_graphs, root_matches
from repro.obs import trace as _trace
from repro.qgm.boxes import BaseTableBox, QCL, QGMBox, QueryGraph, SelectBox, box_heights
from repro.rewrite.index import prune_candidates
from repro.testing import faults


@dataclass
class AppliedRewrite:
    """One accepted match, for explain output and decision-cache replay.

    ``subsumee_index`` is the matched box's position in ``graph.boxes()``
    immediately before this match was applied — enough, together with the
    match's compensation chain, to replay the application on a freshly
    bound structurally identical graph.
    """

    summary: SummaryTable
    match: MatchResult
    subsumee_index: int = -1

    def describe(self) -> str:
        return f"{self.summary.name}: {self.match.describe()}"


@dataclass
class RewriteResult:
    """The outcome of :func:`rewrite_query`."""

    graph: QueryGraph
    applied: list[AppliedRewrite] = field(default_factory=list)

    @property
    def summary_tables(self) -> list[SummaryTable]:
        return [entry.summary for entry in self.applied]

    @property
    def sql(self) -> str:
        """The rewritten query rendered back to SQL."""
        from repro.qgm.unparse import to_sql

        return to_sql(self.graph)

    def explain(self) -> str:
        lines = [entry.describe() for entry in self.applied]
        return "\n".join(lines) if lines else "(no rewrite applied)"


def rewrite_query(
    graph: QueryGraph,
    summaries: list[SummaryTable],
    accept=None,
    options: dict | None = None,
    stats=None,
    prune: bool = True,
) -> RewriteResult | None:
    """Reroute ``graph`` over the given summary tables.

    ``accept`` is an optional callback ``(summary, match) -> bool`` — the
    related problem (b) hook; :mod:`repro.rewrite.planner` provides a
    cost-based implementation. ``options`` are matcher knobs (see
    :data:`repro.matching.framework.DEFAULT_OPTIONS`). ``stats`` is an
    optional :class:`repro.rewrite.cache.RewriteStats` counter sink.
    ``prune`` routes candidates through the AST signature index
    (:func:`repro.rewrite.index.prune_candidates`) before any navigation;
    disabling it (the pre-index behaviour, kept for the ablation
    benchmarks) falls back to the bare base-table-overlap check. Returns
    None when nothing matched.
    """
    applied: list[AppliedRewrite] = []
    remaining = list(summaries)
    while remaining:
        # Cheap signature pruning first — re-run per iteration because an
        # applied rewrite changes the graph's base tables.
        if prune:
            pool = prune_candidates(graph, remaining, stats=stats)
        else:
            query_tables = graph.base_tables()
            pool = [s for s in remaining if s.base_tables() & query_tables]
            if stats is not None:
                stats.candidates_considered += len(remaining)
                stats.candidates_pruned += len(remaining) - len(pool)
        # Gather every candidate (summary, match) and take the best one:
        # the highest query box saved, then the smallest summary table
        # (a lightweight instance of related problem (b)).
        heights = box_heights(graph)
        candidates = []
        for summary in pool:
            if stats is not None:
                stats.matches_attempted += 1
            match = _best_match(graph, summary, options)
            if match is None:
                continue
            candidates.append(
                (-heights.get(id(match.subsumee), 0), summary.row_count, summary, match)
            )
        candidates.sort(key=lambda item: (item[0], item[1]))
        chosen = None
        for _, _, summary, match in candidates:
            if accept is None or accept(summary, match):
                chosen = (summary, match)
                break
            remaining.remove(summary)
        if chosen is None:
            break
        summary, match = chosen
        subsumee_index = _box_position(graph, match.subsumee)
        apply_match(graph, match, summary)
        applied.append(AppliedRewrite(summary, match, subsumee_index))
        if stats is not None:
            stats.rewrites_applied += 1
        t = _trace.ACTIVE
        if t is not None:
            t.mark_applied(summary.name)
        remaining.remove(summary)
    if not applied:
        return None
    graph.validate()
    return RewriteResult(graph, applied)


def _box_position(graph: QueryGraph, target: QGMBox) -> int:
    for position, box in enumerate(graph.boxes()):
        if box is target:
            return position
    return -1


def _best_match(
    graph: QueryGraph, summary: SummaryTable, options: dict | None = None
) -> MatchResult | None:
    faults.fire("rewrite.match")
    t = _trace.ACTIVE
    if t is None:
        ctx = match_graphs(graph, summary.graph, options=options)
        candidates = root_matches(graph, summary.graph, ctx)
        return candidates[0] if candidates else None
    t.begin_summary(summary.name, summary.graph.root)
    match = None
    try:
        ctx = match_graphs(graph, summary.graph, options=options)
        candidates = root_matches(graph, summary.graph, ctx)
        match = candidates[0] if candidates else None
    finally:
        t.end_summary(match)
    return match


def apply_match(
    graph: QueryGraph, match: MatchResult, summary: SummaryTable
) -> QGMBox:
    """Destructively replace ``match.subsumee`` in ``graph`` with the
    compensation applied to a scan of the summary table. Returns the new
    box standing in for the subsumee."""
    t = _trace.ACTIVE
    started = t.clock() if t is not None else 0.0
    scan = BaseTableBox(f"Scan[{summary.name}]", summary.schema)
    counter = [0]

    def fresh(box: QGMBox) -> str:
        counter[0] += 1
        return f"{box.name}@{counter[0]}"

    if match.exact:
        # Footnote 5: exact up to extra subsumer columns / names; a thin
        # projection restores the subsumee's exact output signature.
        replacement: QGMBox = _projection(match, scan)
    else:
        rebased = rebase_chain(match.chain, scan, fresh)
        replacement = rebased[-1]

    parents = graph.parents_of(match.subsumee)
    for _, quantifier in parents:
        quantifier.box = replacement
    if graph.root is match.subsumee:
        graph.root = replacement
    if t is not None:
        t.add_phase("compensate", started)
    return replacement


def _projection(match: MatchResult, scan: BaseTableBox) -> SelectBox:
    projection = SelectBox(f"Project[{match.subsumee.name}]")
    projection.add_quantifier(MAIN, scan)
    for qcl in match.subsumee.outputs:
        projection.add_output(
            QCL(
                qcl.name,
                ColumnRef(MAIN, match.column_map[qcl.name]),
                qcl.nullable,
            )
        )
    return projection
