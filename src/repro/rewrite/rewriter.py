"""Query rewriting: apply a match to reroute a query over an AST.

Given a match between a query box E and an AST's root box, the rewrite
splices the match's compensation chain onto a scan of the materialized
summary table and re-points E's consumers at the chain top. Rewriting is
iterative (Section 7): after a successful rewrite the result is matched
against the remaining ASTs, so one query can combine several summary
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asts.definition import SummaryTable
from repro.expr.nodes import ColumnRef
from repro.matching.framework import MAIN, MatchResult, rebase_chain
from repro.matching.navigator import match_graphs, root_matches
from repro.qgm.boxes import BaseTableBox, QCL, QGMBox, QueryGraph, SelectBox


@dataclass
class AppliedRewrite:
    """One accepted match, for explain output."""

    summary: SummaryTable
    match: MatchResult

    def describe(self) -> str:
        return f"{self.summary.name}: {self.match.describe()}"


@dataclass
class RewriteResult:
    """The outcome of :func:`rewrite_query`."""

    graph: QueryGraph
    applied: list[AppliedRewrite] = field(default_factory=list)

    @property
    def summary_tables(self) -> list[SummaryTable]:
        return [entry.summary for entry in self.applied]

    @property
    def sql(self) -> str:
        """The rewritten query rendered back to SQL."""
        from repro.qgm.unparse import to_sql

        return to_sql(self.graph)

    def explain(self) -> str:
        lines = [entry.describe() for entry in self.applied]
        return "\n".join(lines) if lines else "(no rewrite applied)"


def rewrite_query(
    graph: QueryGraph,
    summaries: list[SummaryTable],
    accept=None,
    options: dict | None = None,
) -> RewriteResult | None:
    """Reroute ``graph`` over the given summary tables.

    ``accept`` is an optional callback ``(summary, match) -> bool`` — the
    related problem (b) hook; :mod:`repro.rewrite.planner` provides a
    cost-based implementation. ``options`` are matcher knobs (see
    :data:`repro.matching.framework.DEFAULT_OPTIONS`). Returns None when
    nothing matched.
    """
    applied: list[AppliedRewrite] = []
    remaining = list(summaries)
    while remaining:
        # Gather every candidate (summary, match) and take the best one:
        # the highest query box saved, then the smallest summary table
        # (a lightweight instance of related problem (b)).
        heights = _box_heights(graph)
        candidates = []
        for summary in remaining:
            match = _best_match(graph, summary, options)
            if match is None:
                continue
            candidates.append(
                (-heights.get(id(match.subsumee), 0), summary.row_count, summary, match)
            )
        candidates.sort(key=lambda item: (item[0], item[1]))
        chosen = None
        for _, _, summary, match in candidates:
            if accept is None or accept(summary, match):
                chosen = (summary, match)
                break
            remaining.remove(summary)
        if chosen is None:
            break
        summary, match = chosen
        apply_match(graph, match, summary)
        applied.append(AppliedRewrite(summary, match))
        remaining.remove(summary)
    if not applied:
        return None
    graph.validate()
    return RewriteResult(graph, applied)


def _box_heights(graph: QueryGraph) -> dict[int, int]:
    heights: dict[int, int] = {}
    for box in graph.boxes():
        child_heights = [heights[id(child)] for child in box.children()]
        heights[id(box)] = 1 + max(child_heights, default=0)
    return heights


def _best_match(
    graph: QueryGraph, summary: SummaryTable, options: dict | None = None
) -> MatchResult | None:
    if not summary.base_tables() & graph.base_tables():
        # Quick pruning only when the AST shares no table with the query;
        # a superset is fine (extra children join losslessly).
        return None
    ctx = match_graphs(graph, summary.graph, options=options)
    candidates = root_matches(graph, summary.graph, ctx)
    return candidates[0] if candidates else None


def apply_match(
    graph: QueryGraph, match: MatchResult, summary: SummaryTable
) -> QGMBox:
    """Destructively replace ``match.subsumee`` in ``graph`` with the
    compensation applied to a scan of the summary table. Returns the new
    box standing in for the subsumee."""
    scan = BaseTableBox(f"Scan[{summary.name}]", summary.schema)
    counter = [0]

    def fresh(box: QGMBox) -> str:
        counter[0] += 1
        return f"{box.name}@{counter[0]}"

    if match.exact:
        # Footnote 5: exact up to extra subsumer columns / names; a thin
        # projection restores the subsumee's exact output signature.
        replacement: QGMBox = _projection(match, scan)
    else:
        rebased = rebase_chain(match.chain, scan, fresh)
        replacement = rebased[-1]

    parents = graph.parents_of(match.subsumee)
    for _, quantifier in parents:
        quantifier.box = replacement
    if graph.root is match.subsumee:
        graph.root = replacement
    return replacement


def _projection(match: MatchResult, scan: BaseTableBox) -> SelectBox:
    projection = SelectBox(f"Project[{match.subsumee.name}]")
    projection.add_quantifier(MAIN, scan)
    for qcl in match.subsumee.outputs:
        projection.add_output(
            QCL(
                qcl.name,
                ColumnRef(MAIN, match.column_map[qcl.name]),
                qcl.nullable,
            )
        )
    return projection
