"""AST candidate index: cheap pruning before any navigation.

``rewrite_query`` historically ran the full navigator
(:func:`repro.matching.navigator.match_graphs`) against *every*
registered summary table — O(summaries × boxes²) per query. With many
ASTs registered, rewrite latency is dominated by candidates that could
never match. This module extracts a small :class:`SummarySignature` from
each AST at registration time and, at query time, keeps only *plausible*
candidates via set-containment checks that are **conservative**: a
summary is pruned only when the matching patterns provably cannot
produce a root match.

The checks, and why each is safe:

* **Base-table overlap** — a root match needs at least one subsumee
  child matching a subsumer child, which bottoms out at base-table boxes
  that match only when they scan the same stored table. No shared base
  table ⇒ no match.
* **Peelable extras** — every subsumer box is either matched against a
  same-kind query box or peeled as an *extra* child, and extras must be
  base tables joined through a declared foreign key whose parent side is
  the extra (``Catalog.ri_join_is_lossless``). So an AST base table
  absent from the query must at least be the parent of *some* declared
  foreign key; otherwise no peel — and no match — is possible.
* **Box-kind containment** — by the same either-matched-or-peeled
  induction, every non-base AST box must match a query box of the same
  kind (GROUP-BY compensation chains only ever contain GROUP-BY boxes
  that originated from query-side grouping). An AST with a GROUP-BY (or
  UNION ALL) box therefore cannot match a query without one.

The signature also records the AST's grouping columns and root output
columns. These are *not* used for pruning — output and grouping columns
are matched semantically (derivation through compensations and column
equivalences), so name-level containment would wrongly prune e.g. a
``year``/``year(date)`` pair — but they are cheap to keep and feed
diagnostics and the advisor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asts.definition import SummaryTable
from repro.catalog.schema import Catalog
from repro.obs import trace as _trace
from repro.qgm.boxes import BaseTableBox, GroupByBox, QueryGraph

#: box kinds whose presence in the AST requires presence in the query
_STRUCTURAL_KINDS = ("groupby", "union")


@dataclass(frozen=True)
class SummarySignature:
    """The matching-relevant shape of one QGM graph."""

    base_tables: frozenset[str]
    box_kinds: frozenset[str]
    grouping_columns: frozenset[str]
    output_columns: frozenset[str]

    @property
    def has_grouping(self) -> bool:
        return "groupby" in self.box_kinds


def graph_signature(graph: QueryGraph) -> SummarySignature:
    """Extract the signature of a bound graph (query or AST side)."""
    base_tables = set()
    box_kinds = set()
    grouping: set[str] = set()
    for box in graph.boxes():
        box_kinds.add(box.kind)
        if isinstance(box, BaseTableBox):
            base_tables.add(box.table_name.lower())
        elif isinstance(box, GroupByBox):
            grouping.update(name.lower() for name in box.grouping_items)
    outputs = frozenset(qcl.name.lower() for qcl in graph.root.outputs)
    return SummarySignature(
        base_tables=frozenset(base_tables),
        box_kinds=frozenset(box_kinds),
        grouping_columns=frozenset(grouping),
        output_columns=outputs,
    )


def summary_signature(summary: SummaryTable) -> SummarySignature:
    """The (lazily computed, cached) signature of a summary table."""
    cached = getattr(summary, "_signature", None)
    if cached is None:
        cached = graph_signature(summary.graph)
        summary._signature = cached
    return cached


def _fk_parent_tables(catalog: Catalog) -> frozenset[str]:
    return frozenset(
        fk.parent_table.lower() for fk in catalog.foreign_keys
    )


def plausible(
    query: SummarySignature,
    ast: SummarySignature,
    fk_parents: frozenset[str],
) -> bool:
    """Could an AST with signature ``ast`` possibly root-match a query
    with signature ``query``? False only when a match is impossible."""
    if not ast.base_tables & query.base_tables:
        return False
    if not (ast.base_tables - query.base_tables) <= fk_parents:
        return False
    for kind in _STRUCTURAL_KINDS:
        if kind in ast.box_kinds and kind not in query.box_kinds:
            return False
    return True


def filter_fresh(
    summaries: list[SummaryTable],
    tolerance,
    stats=None,
    log=None,
) -> list[SummaryTable]:
    """The subset of ``summaries`` fresh enough for ``tolerance``.

    This is the staleness gate in front of the candidate index: a
    REFRESH DEFERRED summary with staged delta batches is only *offered*
    to the matcher when the query's freshness tolerance
    (:class:`repro.refresh.policy.RefreshAge`) admits its lag. Fully
    fresh summaries (no pending deltas — which includes every REFRESH
    IMMEDIATE summary) always pass. ``tolerance=None`` disables the
    staleness gate (library callers driving :func:`rewrite_query` by
    hand).

    ``log`` is the database's :class:`repro.refresh.log.DeltaLog`. When
    given, freshness is decided by the log's per-table high-water LSNs:
    a summary is fully fresh exactly when no base table it reads has
    changed past its ``last_refresh_lsn`` — an O(base tables) dict
    lookup against :meth:`~repro.refresh.log.DeltaLog.high_water`
    instead of trusting (or recomputing) per-summary pending counters.
    The per-summary ``pending_deltas`` counter is still what sizes the
    lag for tolerance admission (it counts the same staged-batch units
    ``SET REFRESH AGE <n>`` is expressed in).

    **Quarantined** summaries — ones the refresh pipeline gave up on
    (see :mod:`repro.refresh.scheduler`) or that recovery could not
    rebuild (:func:`repro.engine.persist.verify_database`) — are
    excluded unconditionally, at *every* tolerance including ``None``:
    their contents are untrusted, which is stronger than stale.

    ``stats`` is an optional :class:`repro.rewrite.cache.RewriteStats`;
    rejected candidates are counted as ``stale_rejections`` /
    ``quarantined_rejections``.
    """
    kept = []
    rejected = 0
    quarantined = 0
    t = _trace.ACTIVE
    for summary in summaries:
        state = getattr(summary, "refresh", None)
        if state is not None and state.quarantined:
            quarantined += 1
            if t is not None:
                t.verdict(
                    summary.name, "quarantined",
                    state.quarantine_reason
                    if getattr(state, "quarantine_reason", None)
                    else "contents untrusted after refresh failures",
                )
            continue
        if tolerance is None:
            kept.append(summary)
            continue
        # REFRESH IMMEDIATE summaries are maintained synchronously with
        # every base-table change — they are fresh by construction.
        if state is None or not state.is_deferred:
            kept.append(summary)
            continue
        if log is not None:
            signature = summary_signature(summary)
            fresh = all(
                log.high_water(table) <= state.last_refresh_lsn
                for table in signature.base_tables
            )
            pending = 0 if fresh else max(state.pending_deltas, 1)
        else:
            pending = state.pending_deltas
        if tolerance.admits(pending):
            kept.append(summary)
        else:
            rejected += 1
            if t is not None:
                t.verdict(
                    summary.name, "refresh-age",
                    f"{pending} pending delta batch(es) exceed "
                    + tolerance.describe(),
                )
    if stats is not None:
        if rejected:
            stats.stale_rejections += rejected
        if quarantined:
            stats.quarantined_rejections += quarantined
    return kept


def prune_candidates(
    graph: QueryGraph,
    summaries: list[SummaryTable],
    stats=None,
) -> list[SummaryTable]:
    """The plausible subset of ``summaries`` for ``graph``, in order.

    ``stats`` is an optional :class:`repro.rewrite.cache.RewriteStats`;
    when given, considered/pruned counters are updated.
    """
    if not summaries:
        return []
    query_sig = graph_signature(graph)
    fk_parents = _fk_parent_tables(graph.catalog)
    t = _trace.ACTIVE
    kept = []
    for summary in summaries:
        if plausible(query_sig, summary_signature(summary), fk_parents):
            kept.append(summary)
        elif t is not None:
            t.verdict(
                summary.name, "pruned",
                "signature index: base tables or box kinds cannot cover "
                "the query",
            )
    if stats is not None:
        stats.candidates_considered += len(summaries)
        stats.candidates_pruned += len(summaries) - len(kept)
    return kept


class SummaryIndex:
    """Registration-time signature store for a database's summary tables.

    Signatures are extracted eagerly on :meth:`register` so the first
    query after a ``CREATE SUMMARY TABLE`` pays no extraction cost, and
    dropped summaries are forgotten. Pruning itself delegates to
    :func:`prune_candidates`, which reads the signature cached on each
    summary object — so the index stays correct even for summaries
    registered behind its back (library users calling ``rewrite_query``
    directly).
    """

    def __init__(self) -> None:
        self._signatures: dict[str, SummarySignature] = {}

    def register(self, summary: SummaryTable) -> SummarySignature:
        signature = summary_signature(summary)
        self._signatures[summary.name.lower()] = signature
        return signature

    def unregister(self, name: str) -> None:
        self._signatures.pop(name.lower(), None)

    def signature(self, name: str) -> SummarySignature | None:
        return self._signatures.get(name.lower())

    def __len__(self) -> int:
        return len(self._signatures)

    def candidates(
        self,
        graph: QueryGraph,
        summaries: list[SummaryTable],
        stats=None,
    ) -> list[SummaryTable]:
        return prune_candidates(graph, summaries, stats=stats)
