"""Cost-based AST selection — related problem (b).

The paper delegates "should this AST actually be used" to prior work
([2]); we implement the standard size-based heuristic: a rewrite is
accepted only when the data scanned after the rewrite (summary-table rows
plus any rejoined dimension rows) is smaller than the data it replaces
(the base rows the matched query box would have scanned), by at least a
configurable factor.

Usage::

    planner = CostPlanner(db, min_speedup=1.0)
    result = rewrite_query(graph, db.enabled_summary_tables(),
                           accept=planner.accept)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asts.definition import SummaryTable
from repro.matching.framework import MatchResult, chain_rejoin_quantifiers
from repro.qgm.boxes import BaseTableBox, QGMBox


@dataclass
class CostEstimate:
    """Row counts on both sides of a candidate rewrite."""

    replaced_rows: int  # base rows scanned by the subsumee's subtree
    rewritten_rows: int  # summary rows + rejoined rows

    @property
    def speedup(self) -> float:
        if self.rewritten_rows == 0:
            return float("inf")
        return self.replaced_rows / self.rewritten_rows


class CostPlanner:
    """Accept/reject rewrites by estimated scan volume."""

    def __init__(self, database, min_speedup: float = 1.0):
        self._database = database
        self.min_speedup = min_speedup
        self.decisions: list[tuple[str, CostEstimate, bool]] = []

    def estimate(self, summary: SummaryTable, match: MatchResult) -> CostEstimate:
        replaced = self._subtree_base_rows(match.subsumee)
        rewritten = summary.row_count
        for quantifier in chain_rejoin_quantifiers(match.chain):
            rewritten += self._subtree_base_rows(quantifier.box)
        return CostEstimate(replaced, rewritten)

    def accept(self, summary: SummaryTable, match: MatchResult) -> bool:
        estimate = self.estimate(summary, match)
        decision = estimate.speedup >= self.min_speedup
        self.decisions.append((summary.name, estimate, decision))
        return decision

    def _subtree_base_rows(self, box: QGMBox) -> int:
        total = 0
        seen: set[int] = set()
        stack = [box]
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            if isinstance(current, BaseTableBox):
                try:
                    total += len(self._database.table(current.table_name))
                except Exception:  # table may be virtual in tests
                    total += 0
            stack.extend(current.children())
        return total
