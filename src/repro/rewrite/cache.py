"""The rewrite decision cache and fast-path instrumentation.

Serving the same dashboard queries over and over re-runs the whole
navigator per query even though the decision never changes between DDL
events. :class:`RewriteCache` is a bounded LRU keyed by the structural
fingerprint of the bound query graph (:mod:`repro.qgm.fingerprint`) that
remembers, per query shape:

* **positive** outcomes — the ordered list of :class:`CachedStep`
  replay records (which summary matched which box, with the proven
  compensation chain as a template), so a hit re-applies the rewrite
  directly on the freshly bound graph via
  :func:`repro.rewrite.rewriter.apply_match` without any matching; and
* **negative** outcomes — "no rewrite applies", so the navigator is
  skipped entirely.

Entries are validated against an *epoch* counter that
:class:`repro.engine.database.Database` bumps on every
``create_summary_table`` / ``drop_summary_table`` /
``refresh_summary_tables`` / enable-disable / applied deferred refresh,
plus the exact set of *admissible* summary names — enabled **and** fresh
enough for the query's refresh-age tolerance (which also catches
``summary.enabled`` being toggled directly on the dataclass, and staged
deltas flipping a deferred summary from fresh to stale). The freshness
tolerance itself is part of the cache key, so a decision cached under
``SET REFRESH AGE ANY`` is never served to a ``REFRESH AGE 0`` query or
vice versa. Stale entries are dropped on lookup.

:class:`RewriteStats` collects the whole fast path's counters; they are
exposed via ``Database.rewrite_stats()`` and rendered by ``EXPLAIN`` and
the CLI's ``\\stats`` command.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.qgm.boxes import QGMBox
from repro.qgm.fingerprint import GraphFingerprint

#: fast-path counter names and their one-line help (exposition strings)
_STAT_FIELDS = {
    "queries": "rewrite attempts routed through the fast path",
    "candidates_considered": "summaries seen by the index",
    "candidates_pruned": "... of which pruned without navigation",
    "matches_attempted": "full match_graphs navigations run",
    "rewrites_applied": "accepted (summary, match) applications",
    "cache_hits": "positive decision-cache hits (replays)",
    "cache_negative_hits": "cached 'no rewrite applies' hits",
    "cache_misses": "fingerprint not cached (or stale)",
    "cache_stores": "decisions written to the cache",
    "cache_invalidations": "entries dropped as stale on lookup",
    "cache_replay_failures": "replays that fell back to cold path",
    "stale_rejections": "summaries too stale for the query's tolerance",
    "quarantined_rejections": "quarantined summaries kept out of routing",
    "rewrite_errors": "sandboxed rewrite failures (query fell back)",
}


class RewriteStats:
    """Counters for the matching fast path (cumulative per database).

    Historically a plain dataclass of ints; now a *view* over
    :class:`repro.obs.metrics.MetricsRegistry` counters (named
    ``rewrite_<field>``), so the same numbers appear in ``\\stats``,
    ``EXPLAIN``, ``\\metrics`` and the Prometheus dump without double
    bookkeeping. The attribute API is unchanged — ``stats.cache_hits``
    reads and ``stats.cache_hits += 1`` writes — and a bare
    ``RewriteStats()`` still works (it owns a private registry), so
    library callers and existing tests are untouched.
    """

    _FIELDS = tuple(_STAT_FIELDS)

    def __init__(self, registry: MetricsRegistry | None = None,
                 namespace: str = "rewrite", **initial: int):
        if registry is None:
            registry = MetricsRegistry()
        counters = {
            name: registry.counter(f"{namespace}_{name}", help)
            for name, help in _STAT_FIELDS.items()
        }
        self.__dict__["_registry"] = registry
        self.__dict__["_counters"] = counters
        for name, value in initial.items():
            if name not in counters:
                raise TypeError(f"unknown counter {name!r}")
            counters[name].set(value)

    @property
    def registry(self) -> MetricsRegistry:
        return self.__dict__["_registry"]

    def __getattr__(self, name: str) -> int:
        counter = self.__dict__["_counters"].get(name)
        if counter is None:
            raise AttributeError(name)
        return counter.value

    def __setattr__(self, name: str, value: int) -> None:
        counter = self.__dict__["_counters"].get(name)
        if counter is None:
            self.__dict__[name] = value
        else:
            counter.set(value)

    def as_dict(self) -> dict[str, int]:
        counters = self.__dict__["_counters"]
        return {name: counters[name].value for name in self._FIELDS}

    def reset(self) -> None:
        for counter in self.__dict__["_counters"].values():
            counter.set(0)

    def snapshot(self) -> "RewriteStats":
        """An independent frozen copy (its own registry) for delta()."""
        return RewriteStats(**self.as_dict())

    def delta(self, since: "RewriteStats") -> dict[str, int]:
        """Counter increments since a :meth:`snapshot`."""
        before = since.as_dict()
        return {name: value - before[name] for name, value in self.as_dict().items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"RewriteStats({inner})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, RewriteStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()


@dataclass(frozen=True)
class CachedStep:
    """One applied (summary, match) pair, in replayable form.

    ``subsumee_index`` locates the matched query box by its position in
    ``graph.boxes()`` *at the time the step ran* — fingerprint equality
    guarantees a freshly bound graph enumerates identically, and the
    rewrite itself is deterministic, so later steps' indices stay valid
    on the intermediate graphs too. ``chain`` is the proven compensation
    template; ``apply_match`` clones it onto the new summary scan, so the
    cached boxes are never mutated.
    """

    summary_name: str
    subsumee_index: int
    chain: tuple[QGMBox, ...]
    column_map: tuple[tuple[str, str], ...]
    pattern: str


@dataclass
class CacheEntry:
    """One cached decision plus its validity stamp.

    ``admissible`` is the exact set of summary names that were enabled
    *and* fresh enough for the query's tolerance when the decision was
    made; any change to that set (DDL, enable/disable, staged deltas,
    applied refreshes) invalidates the entry on lookup.
    """

    epoch: int
    admissible: frozenset[str]
    steps: tuple[CachedStep, ...] | None  # None ⇒ negative (no rewrite)


#: cache key: the graph fingerprint, the matcher options in effect, and
#: the freshness tolerance (RefreshAge.key) the decision was made under
CacheKey = tuple[GraphFingerprint, tuple, tuple]


def options_key(options: dict | None) -> tuple:
    """A hashable canonical form of the matcher options."""
    if not options:
        return ()
    return tuple(sorted(options.items()))


class RewriteCache:
    """A bounded LRU of rewrite decisions."""

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self,
        key: CacheKey,
        epoch: int,
        admissible: frozenset[str],
        stats: RewriteStats | None = None,
    ) -> CacheEntry | None:
        """The valid entry for ``key``, refreshed as most recent; stale
        entries are evicted and counted as invalidations."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.epoch != epoch or entry.admissible != admissible:
            del self._entries[key]
            if stats is not None:
                stats.cache_invalidations += 1
            return None
        self._entries.move_to_end(key)
        return entry

    def store(self, key: CacheKey, entry: CacheEntry) -> None:
        if self.maxsize <= 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
