"""A blocking client for the query server.

:class:`ReproClient` speaks the protocol in :mod:`repro.server.
protocol` over a plain TCP socket — one request line out, one response
line back — and re-raises server-side failures as the same typed
:mod:`repro.errors` exceptions the in-process library would raise
(``QueryRejected`` from admission overflow, ``QueryTimeout`` from a
session deadline, ...), so callers handle remote and local execution
identically. Non-``repro`` server failures surface as
:class:`ServerError`.

The client is deliberately synchronous: the CLI's ``\\connect`` mode,
the tests, and the benchmark drive one connection per thread, which is
exactly the concurrency shape the server's admission control is meant
to govern.
"""

from __future__ import annotations

import socket

from repro.engine.table import Table
from repro.errors import ReproError
from repro.server import protocol


class ServerError(ReproError):
    """The server reported a failure with no matching typed error."""


class QueryReply:
    """One decoded server response to ``query``/``set``/``explain``."""

    def __init__(self, raw: dict):
        self.raw = raw
        self.table: Table | None = (
            protocol.decode_table(raw["table"]) if "table" in raw else None
        )
        self.status: str | None = raw.get("status")
        self.text: str | None = raw.get("text")
        #: "hit" | "stale-hit" | "miss" | "bypass" | None (non-SELECT)
        self.cache: str | None = raw.get("cache")
        self.elapsed_ms: float = raw.get("elapsed_ms", 0.0)

    @property
    def value(self):
        """The payload: a Table for SELECT/EXPLAIN, else the status."""
        if self.table is not None:
            return self.table
        if self.text is not None:
            return self.text
        return self.status


class ReproClient:
    """One connection to a :class:`~repro.server.server.QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one request, wait for its response; raises the typed
        :mod:`repro.errors` exception on a failure response."""
        self._next_id += 1
        request = {"op": op, "id": self._next_id, **fields}
        self._sock.sendall(protocol.encode_message(request))
        line = self._reader.readline()
        if not line:
            raise ServerError("server closed the connection")
        response = protocol.decode_message(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            cls = protocol.error_class(str(error.get("type", "")))
            if cls is ReproError:
                cls = ServerError
            raise cls(error.get("message", "server error"))
        return response

    # ------------------------------------------------------------------
    def query(self, sql: str, use_summary_tables: bool = True) -> QueryReply:
        """Run any supported statement; SELECTs return a decoded table."""
        fields = {}
        if not use_summary_tables:
            fields["use_summary_tables"] = False
        return QueryReply(self.request("query", sql=sql, **fields))

    def set(self, sql: str) -> str:
        """Apply a session-scoped (or ``SLOW QUERY``: global) SET."""
        return QueryReply(self.request("set", sql=sql)).status or ""

    def explain(self, sql: str, analyze: bool = False) -> str:
        fields = {"analyze": True} if analyze else {}
        return self.request("explain", sql=sql, **fields)["text"]

    def metrics(self) -> dict:
        return self.request("metrics")["metrics"]

    def governor(self) -> list[str]:
        return self.request("governor")["governor"]

    def ping(self) -> dict:
        return self.request("ping")
