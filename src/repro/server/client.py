"""A blocking client for the query server, with failover.

:class:`ReproClient` speaks the protocol in :mod:`repro.server.
protocol` over a plain TCP socket — one request line out, one response
line back — and re-raises server-side failures as the same typed
:mod:`repro.errors` exceptions the in-process library would raise
(``QueryRejected`` from admission overflow, ``QueryTimeout`` from a
session deadline, ...), so callers handle remote and local execution
identically. Non-``repro`` server failures surface as
:class:`ServerError`.

Failover (docs/ROBUSTNESS.md, "Durability & failover") is opt-in via
``retries``/``failover``:

* A transport failure — connection refused/reset, a timeout, a
  half-read reply — closes the socket (a connection in an unknown
  protocol state is never reused), reconnects, and retries with
  exponential backoff plus deterministic jitter, rotating through the
  failover addresses.
* Every retried ``query`` carries the same client-generated
  *idempotency token*, so a mutation whose ACK was lost is answered
  from the server's dedup window instead of applying twice —
  exactly-once from the caller's view.
* A :class:`~repro.errors.ReadOnlyError` reply (the request landed on
  a standby) is treated as a redirect hint: the client rotates to the
  next address and retries there.
* Session ``SET`` statements issued through :meth:`set` are replayed
  after every reconnect, so a failover is transparent to session knobs.

With ``retries=0`` (the default) nothing is retried, but the
close-on-timeout rule still applies: the old behavior of leaving a
partially-read reply buffered on a live socket desynced every
subsequent request on that connection.
"""

from __future__ import annotations

import random
import socket
import time
import uuid

from repro.engine.table import Table
from repro.errors import ReadOnlyError, ReproError
from repro.obs import events as _events
from repro.obs import spans as _spans
from repro.server import protocol
from repro.testing import faults


class ServerError(ReproError):
    """The server reported a failure with no matching typed error."""


class ConnectionLost(ServerError):
    """The transport failed mid-request (refused, reset, timed out, or
    the reply was cut short). The connection has been closed; whether
    the server processed the request is unknown — which is exactly what
    idempotency tokens exist for."""


class QueryReply:
    """One decoded server response to ``query``/``set``/``explain``."""

    def __init__(self, raw: dict):
        self.raw = raw
        self.table: Table | None = (
            protocol.decode_table(raw["table"]) if "table" in raw else None
        )
        self.status: str | None = raw.get("status")
        self.text: str | None = raw.get("text")
        #: "hit" | "stale-hit" | "miss" | "bypass" | None (non-SELECT)
        self.cache: str | None = raw.get("cache")
        self.elapsed_ms: float = raw.get("elapsed_ms", 0.0)
        #: True when the server answered from its dedup window (a retry
        #: of a mutation it had already applied)
        self.deduped: bool = bool(raw.get("deduped"))

    @property
    def value(self):
        """The payload: a Table for SELECT/EXPLAIN, else the status."""
        if self.table is not None:
            return self.table
        if self.text is not None:
            return self.text
        return self.status


class ReproClient:
    """One connection to a :class:`~repro.server.server.QueryServer`.

    ``failover`` lists additional ``(host, port)`` addresses (the warm
    standby); ``retries`` bounds transport retries per request (0
    disables retrying). ``seed`` fixes the jitter stream for
    deterministic tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        failover: tuple[tuple[str, int], ...] = (),
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int | None = None,
    ):
        self._addresses = [(host, port), *failover]
        self._addr_index = 0
        self._timeout = timeout
        self.retries = max(0, retries)
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._reader = None
        self._next_id = 0
        #: successful session SETs, replayed after every reconnect
        self._session_sets: list[str] = []
        self.reconnects = 0
        self.retried = 0
        self._connect()

    # ------------------------------------------------------------------
    # connection management
    @property
    def address(self) -> tuple[str, int]:
        """The address the client is currently pointed at."""
        return self._addresses[self._addr_index]

    def _connect(self) -> None:
        """Connect to the current address, trying each failover address
        in turn; replays the session's SETs on the fresh connection."""
        last_error: Exception | None = None
        for _ in range(len(self._addresses)):
            host, port = self._addresses[self._addr_index]
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=self._timeout
                )
                self._reader = self._sock.makefile("rb")
                for sql in self._session_sets:
                    # A replay that fails (rejected, or the connection
                    # died mid-replay) must fail the whole connection:
                    # silently dropping a knob (REFRESH AGE, a timeout)
                    # would change query semantics behind the caller's
                    # back. OSError keeps the rotation going.
                    try:
                        reply = self._send_one({"op": "set", "sql": sql})
                    except ConnectionLost as error:
                        raise OSError(str(error)) from error
                    if not reply.get("ok"):
                        message = (reply.get("error") or {}).get(
                            "message", "rejected"
                        )
                        raise OSError(
                            f"session SET replay failed ({message})"
                        )
                return
            except OSError as error:
                last_error = error
                self._disconnect()
                self._addr_index = (
                    (self._addr_index + 1) % len(self._addresses)
                )
        raise ConnectionLost(
            f"cannot reach any server ({last_error})"
        ) from last_error

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:  # pragma: no cover
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def _rotate(self) -> None:
        self._addr_index = (self._addr_index + 1) % len(self._addresses)

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # requests
    def request(self, op: str, **fields) -> dict:
        """Send one request, wait for its response; raises the typed
        :mod:`repro.errors` exception on a failure response.

        With retries enabled, every ``query`` carries an idempotency
        token (the same one across all attempts), transport failures
        reconnect and retry with backoff, and ``ReadOnlyError`` rotates
        to the next address.

        When the process tracer is installed (``repro.obs.spans``), the
        request is a trace root: every attempt is a child span, and the
        sampled trace context rides the wire in a ``trace`` field so the
        server's spans join the same trace.
        """
        if self.retries > 0 and op == "query" and "token" not in fields:
            fields["token"] = uuid.uuid4().hex
        tracer = _spans.TRACER
        root = (
            tracer.start_trace("client.request", op=op)
            if tracer is not None
            else _spans.NOOP
        )
        if root:
            # one context across every attempt: retries stay one trace
            fields["trace"] = root.context()
        attempts = self.retries + 1
        last_error: Exception | None = None
        with root:
            for attempt in range(attempts):
                if attempt > 0:
                    self.retried += 1
                    self._sleep_backoff(attempt)
                attempt_span = root.child(
                    "client.attempt", attempt=attempt,
                    address=f"{self.address[0]}:{self.address[1]}",
                )
                try:
                    with attempt_span:
                        return self._request_once(op, fields)
                except ConnectionLost as error:
                    last_error = error
                    self._disconnect()
                    self._rotate()
                    if attempt < attempts - 1:
                        _events.emit(
                            "client.failover",
                            trace_id=root.trace_id,
                            reason=str(error),
                            next=f"{self.address[0]}:{self.address[1]}",
                        )
                except ReadOnlyError:
                    # Redirect hint: this address is a standby. With no
                    # alternative address the caller needs to know.
                    if len(self._addresses) == 1 or attempt == attempts - 1:
                        raise
                    self._disconnect()
                    self._rotate()
                    _events.emit(
                        "client.redirect",
                        trace_id=root.trace_id,
                        next=f"{self.address[0]}:{self.address[1]}",
                    )
            assert last_error is not None
            raise last_error

    def _request_once(self, op: str, fields: dict) -> dict:
        if self._sock is None:
            self._connect()
            self.reconnects += 1
        self._next_id += 1
        request = {"op": op, "id": self._next_id, **fields}
        try:
            assert self._sock is not None and self._reader is not None
            self._sock.sendall(protocol.encode_message(request))
            faults.fire("client.send")
            line = self._reader.readline()
        except faults.InjectedFault as error:
            # The armed client.send point models a lost ACK: the bytes
            # left this socket, the reply never arrived. Same handling
            # as a real transport loss.
            self._disconnect()
            raise ConnectionLost(str(error)) from error
        except socket.timeout as error:
            # The reply may be half-buffered — the socket is in an
            # undefined protocol state and must never be reused.
            self._disconnect()
            raise ConnectionLost(
                f"timed out after {self._timeout:g}s waiting for a reply"
            ) from error
        except OSError as error:
            self._disconnect()
            raise ConnectionLost(f"connection failed ({error})") from error
        if not line:
            self._disconnect()
            raise ConnectionLost("server closed the connection")
        if not line.endswith(b"\n"):
            # A short read: the server (or the network) died mid-reply.
            self._disconnect()
            raise ConnectionLost("reply cut short mid-line")
        response = protocol.decode_message(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            cls = protocol.error_class(str(error.get("type", "")))
            if cls is ReproError:
                cls = ServerError
            exc = cls(error.get("message", "server error"))
            details = error.get("details")
            if isinstance(details, dict):
                # QueryRejected ships a structured load snapshot;
                # re-raise with it attached so callers can back off on
                # data (running/queued/reserved bytes), not prose.
                exc.details = details
            raise exc
        return response

    def _send_one(self, request: dict) -> dict:
        """One raw request on the already-open socket (SET replay during
        reconnect — bypasses the retry machinery on purpose)."""
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(protocol.encode_message(request))
        line = self._reader.readline()
        if not line:
            raise ConnectionLost("server closed the connection")
        return protocol.decode_message(line)

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(
            self._backoff_cap, self._backoff * (2 ** (attempt - 1))
        )
        time.sleep(delay * (0.5 + self._rng.random()))

    # ------------------------------------------------------------------
    def query(self, sql: str, use_summary_tables: bool = True,
              token: str | None = None) -> QueryReply:
        """Run any supported statement; SELECTs return a decoded table.
        ``token`` pins the idempotency token (a fresh one is generated
        per logical request when retries are enabled)."""
        fields = {}
        if not use_summary_tables:
            fields["use_summary_tables"] = False
        if token is not None:
            fields["token"] = token
        return QueryReply(self.request("query", sql=sql, **fields))

    def set(self, sql: str) -> str:
        """Apply a session-scoped (or ``SLOW QUERY``: global) SET; the
        statement is replayed after any reconnect so failover preserves
        session knobs."""
        status = QueryReply(self.request("set", sql=sql)).status or ""
        self._session_sets.append(sql)
        return status

    def explain(self, sql: str, analyze: bool = False) -> str:
        fields = {"analyze": True} if analyze else {}
        return self.request("explain", sql=sql, **fields)["text"]

    def metrics(self) -> dict:
        return self.request("metrics")["metrics"]

    def status(self) -> dict:
        """The server's aggregated health view (the ``status`` op)."""
        return self.request("status")["status"]

    def governor(self) -> list[str]:
        return self.request("governor")["governor"]

    def ping(self) -> dict:
        return self.request("ping")

    def repl_status(self) -> dict:
        return self.request("repl.status")["replication"]

    def promote(self) -> dict:
        """Promote the standby this client is pointed at."""
        return self.request("repl.promote")["promoted"]
