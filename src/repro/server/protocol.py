"""The wire protocol: one JSON object per line, bit-identical values.

Requests and responses are single JSON objects terminated by ``\\n``
(no embedded newlines — the standard library's serializer never emits
them). A request carries an ``op`` plus op-specific fields and an
optional client-chosen ``id`` that the response echoes back:

``{"op": "query", "id": 7, "sql": "SELECT ..."}``

Ops: ``query`` (any supported statement), ``set`` (a ``SET`` statement
only), ``explain`` (with optional ``"analyze": true``), ``metrics``,
``governor``, ``status`` (the aggregated cluster-health view),
``ping``. Responses always carry ``ok``; successful ones
add ``table`` (SELECT/EXPLAIN results), ``status`` (DDL/DML/SET), or
op-specific payloads, and failures add
``{"error": {"type": "...", "message": "..."}}`` where ``type`` is the
:mod:`repro.errors` class name (``QueryRejected``, ``QueryTimeout``,
...) so clients re-raise the same typed exception the library would
have raised in process.

**Trace propagation.** Any request may carry an optional
``"trace": {"trace_id": "...", "parent": "..."}`` field — the span
context minted by a traced :class:`~repro.server.client.ReproClient`
(see :mod:`repro.obs.spans`). The server continues the trace into its
own child spans; requests without the field (tracing off, or the trace
was head-sampled away) cost nothing. On the replication stream, shipped
journal records may carry a ``"trace"`` string (the originating
trace_id) so the standby's apply span joins the same trace.

**Bit-identity.** The differential tests demand that a result served
over the wire equals direct in-process execution exactly. JSON already
round-trips ``int``, ``str``, ``bool``, ``None`` and — via Python's
shortest-repr float serialization — every ``float`` bit-for-bit. The
one engine value type JSON lacks is ``datetime.date``; it travels as a
tagged object ``{"$date": "YYYY-MM-DD"}`` and is revived on decode.
"""

from __future__ import annotations

import datetime
import json
from typing import Any

from repro import errors as _errors
from repro.engine.table import Table

#: cap on one encoded message line; a line longer than this is a
#: protocol error (keeps a hostile or buggy peer from ballooning the
#: reader's buffer). Result tables are large — give them room.
MAX_LINE_BYTES = 64 * 1024 * 1024

_DATE_TAG = "$date"


class ProtocolError(_errors.ReproError):
    """A malformed request or response line."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {_DATE_TAG: value.isoformat()}
    return value


def _encode_row(row) -> list:
    return [_encode_value(value) for value in row]


def _revive(obj: dict) -> Any:
    if len(obj) == 1 and _DATE_TAG in obj:
        return datetime.date.fromisoformat(obj[_DATE_TAG])
    return obj


def encode_message(message: dict) -> bytes:
    """One request/response as a newline-terminated JSON line."""
    text = json.dumps(message, separators=(",", ":"), default=_encode_value)
    return text.encode("utf-8") + b"\n"


def decode_message(line: bytes | str) -> dict:
    """Parse one line back into a message, reviving tagged values."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line, object_hook=_revive)
    except ValueError as error:
        raise ProtocolError(f"bad message line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message line must be a JSON object")
    return message


# ----------------------------------------------------------------------
def encode_table(table: Table) -> dict:
    """A result table as a JSON-ready payload."""
    return {
        "columns": list(table.columns),
        "rows": [_encode_row(row) for row in table.rows],
    }


def decode_table(payload: dict) -> Table:
    """Rebuild a :class:`Table` from :func:`encode_table` output.

    Tagged values are revived here as well as in :func:`decode_message`
    (a payload that came through the message layer has dates already
    revived; one decoded straight from JSON has not)."""
    try:
        columns = payload["columns"]
        rows = [
            tuple(
                _revive(value) if isinstance(value, dict) else value
                for value in row
            )
            for row in payload["rows"]
        ]
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"bad table payload: {error}") from None
    return Table(columns, rows)


# ----------------------------------------------------------------------
def error_payload(error: BaseException) -> dict:
    """The ``error`` field for a failure response. Typed errors that
    carry a structured ``details`` dict (``QueryRejected``'s load
    snapshot) ship it alongside the message so clients can back off on
    data instead of parsing prose."""
    payload = {"type": type(error).__name__, "message": str(error)}
    details = getattr(error, "details", None)
    if details:
        payload["details"] = details
    return payload


def error_class(name: str) -> type:
    """The :mod:`repro.errors` class for a wire error ``type`` — falls
    back to :class:`~repro.errors.ReproError` for unknown names (a newer
    server may grow error types an older client has never heard of)."""
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        return cls
    return _errors.ReproError
