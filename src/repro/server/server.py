"""The asyncio query server: many clients, one shared ``Database``.

One :class:`QueryServer` wraps one :class:`~repro.engine.database.
Database`. Connections are handled on the event loop — framing, JSON,
dispatch — but every statement executes on a thread pool via
``run_in_executor``, so a long scan never blocks another client's
``ping``. Real concurrency control is the engine's own query governor:
the pool is sized *above* the admission limit on purpose, so overload
reaches :class:`~repro.governor.admission.AdmissionController` and
sheds load as typed ``QueryRejected`` errors instead of silently
queueing in the pool.

Request routing (see :mod:`repro.server.protocol` for the wire format):

* SELECT / UNION ALL — through the semantic result cache; on a miss the
  statement executes with the session's knobs passed as per-query
  overrides (never mutating shared state) and the result is cached
  with a pre-execution change-count snapshot.
* session-scoped SET — recorded on the connection's
  :class:`~repro.server.session.Session` only.
* INSERT / DELETE — executed, then the cache eagerly drops entries the
  write permanently killed.
* CREATE SUMMARY TABLE — executes; no eviction (a freshly built
  summary is exactly current, so answers are unchanged).
* DROP / REFRESH SUMMARY TABLE — executes, then stale-tolerant entries
  over the affected base tables are evicted (see
  :mod:`repro.server.result_cache`).
* EXPLAIN [ANALYZE] — runs with the session's freshness tolerance.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.database import Database
from repro.errors import BudgetExhausted, ReproError
from repro.qgm.build import build_graph
from repro.qgm.fingerprint import fingerprint
from repro.server import protocol
from repro.server.result_cache import ResultCache, cache_key
from repro.server.session import SESSION_SET_TYPES, Session
from repro.sql.ast import SelectStatement, UnionAll
from repro.sql.statements import (
    DeleteValues,
    DropSummaryTable,
    Explain,
    InsertValues,
    RefreshSummaryTables,
    SetSlowQuery,
    parse_statement,
)


class QueryServer:
    """Line-delimited JSON query server around one shared database."""

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_enabled: bool = True,
        cache_size: int = 256,
        max_workers: int = 32,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        metrics = db.metrics
        self.cache_enabled = cache_enabled
        self.cache = ResultCache(
            db.delta_log, metrics=metrics, max_entries=cache_size
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-server"
        )
        # Two hot-path memos, both keyed by raw SQL text. Parsing and
        # binding the same text are deterministic, so on the
        # repeat-heavy path their cost is paid once per unique
        # statement (per catalog epoch for the fingerprint) instead of
        # once per request. Memoized ASTs are shared across threads for
        # read-only dispatch and fingerprinting ONLY — anything that
        # executes re-parses a private copy.
        self._parse_memo: dict = {}
        self._fingerprint_memo: dict = {}
        self._memo_lock = threading.Lock()
        self._next_client = 0
        self._client_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self.connections = metrics.gauge(
            "server.connections", "Client connections currently open"
        )
        self.connections_total = metrics.counter(
            "server.connections_total", "Client connections accepted"
        )
        self.requests = metrics.counter(
            "server.requests", "Requests received (all ops)"
        )
        self.errors = metrics.counter(
            "server.errors", "Requests answered with an error response"
        )
        self.request_ms = metrics.histogram(
            "server.request_ms", "Wall-clock per request, milliseconds"
        )

    # ------------------------------------------------------------------
    # lifecycle
    async def _main(self, started: threading.Event | None = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.address = server.sockets[0].getsockname()[:2]
        if started is not None:
            started.set()
        async with server:
            await self._stop_event.wait()
        # Graceful drain: closing each transport makes the handler's
        # pending readline() return EOF, so the handlers finish on their
        # own instead of being cancelled mid-await by asyncio.run().
        for writer in list(self._writers):
            writer.close()
        if self._tasks:
            await asyncio.wait(self._tasks, timeout=5)

    def serve(self) -> None:
        """Run the server on the calling thread until interrupted
        (``repro serve``)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass

    def start_in_thread(self) -> tuple[str, int]:
        """Run the server on a daemon thread; returns ``(host, port)``
        once it is accepting connections (tests, benchmarks, and the
        CLI's embedded mode)."""
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(started)),
            name="repro-server-loop",
            daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout=10):
            raise RuntimeError("server failed to start within 10 s")
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    def _new_client_id(self) -> str:
        with self._client_lock:
            self._next_client += 1
            return f"client-{self._next_client}"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(self._new_client_id())
        self.connections.inc()
        self.connections_total.inc()
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: a line exceeded the stream limit — the
                    # peer is buggy or hostile; drop the connection.
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    break
                response = await self._handle_request(session, line)
                writer.write(protocol.encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            self.connections.dec()
            self._writers.discard(writer)
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request(self, session: Session, line: bytes) -> dict:
        started = time.perf_counter()
        self.requests.inc()
        request_id = None
        try:
            request = protocol.decode_message(line)
            request_id = request.get("id")
            op = request.get("op")
            if op == "ping":
                response = {"ok": True, "pong": True,
                            "session": session.describe()}
            elif op == "metrics":
                response = {"ok": True, "metrics": self.db.metrics.to_dict()}
            elif op == "governor":
                response = {
                    "ok": True,
                    "governor": self.db.governor.describe_lines(),
                }
            elif op in ("query", "set", "explain"):
                sql = request.get("sql")
                if not isinstance(sql, str):
                    raise protocol.ProtocolError(
                        f"op {op!r} requires a string 'sql' field"
                    )
                response = await self._run_blocking(
                    self._execute_request, session, op, sql, request
                )
            else:
                raise protocol.ProtocolError(f"unknown op {op!r}")
        except ReproError as error:
            self.errors.inc()
            response = {"ok": False, "error": protocol.error_payload(error)}
        except Exception as error:  # noqa: BLE001 - wire boundary
            self.errors.inc()
            response = {"ok": False, "error": protocol.error_payload(error)}
        response.setdefault("ok", True)
        if request_id is not None:
            response["id"] = request_id
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.request_ms.observe(elapsed_ms)
        response["elapsed_ms"] = elapsed_ms
        return response

    async def _run_blocking(self, fn, *args):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._pool, fn, *args)

    # ------------------------------------------------------------------
    # statement execution (thread-pool side)
    def _cached_parse(self, sql: str):
        with self._memo_lock:
            statement = self._parse_memo.get(sql)
        if statement is None:
            statement = parse_statement(sql)
            with self._memo_lock:
                if len(self._parse_memo) >= 4096:
                    self._parse_memo.clear()
                self._parse_memo[sql] = statement
        return statement

    def _execute_request(
        self, session: Session, op: str, sql: str, request: dict
    ) -> dict:
        statement = self._cached_parse(sql)
        if op == "set" and not isinstance(
            statement, SESSION_SET_TYPES + (SetSlowQuery,)
        ):
            raise protocol.ProtocolError("op 'set' accepts only SET statements")
        if op == "explain" or isinstance(statement, Explain):
            if isinstance(statement, Explain):
                inner, analyze = statement.sql, statement.analyze
            else:
                inner, analyze = sql, bool(request.get("analyze"))
            if analyze:
                text = self.db.explain_analyze(inner)
            else:
                text = self.db.explain(
                    inner, tolerance=session.effective_tolerance(self.db)
                )
            return {"ok": True, "text": text}
        status = session.apply_set(statement)
        if status is not None:
            return {"ok": True, "status": status}
        if isinstance(statement, (SelectStatement, UnionAll)):
            session.queries += 1
            use_summaries = bool(request.get("use_summary_tables", True))
            table, label = self._execute_select(
                session, statement, sql, use_summaries
            )
            return {
                "ok": True,
                "table": protocol.encode_table(table),
                "cache": label,
            }
        return self._execute_mutation(statement, sql)

    def _execute_select(self, session: Session, statement, sql: str,
                        use_summaries: bool):
        db = self.db
        tolerance = session.effective_tolerance(db)
        if not self.cache_enabled:
            table = self._run_select(session, statement, sql, use_summaries,
                                     tolerance)
            return table, "bypass"
        fp_key, base_tables = self._fingerprint_for(
            statement, sql, use_summaries
        )
        key = cache_key(fp_key, tolerance, use_summaries)
        hit = self.cache.lookup(key)
        if hit is not None:
            table, label = hit
            max_rows = session.effective_max_rows(db)
            if max_rows is not None and len(table.rows) > max_rows:
                # Governed execution would have stopped at the cap;
                # serving the oversized cached result would bypass it.
                raise BudgetExhausted(
                    f"result has {len(table.rows)} rows, exceeds "
                    f"QUERY MAXROWS {max_rows}"
                )
            return table, label
        # Snapshot BEFORE execution: a write landing mid-query makes the
        # entry look staler than it is — the safe direction.
        snapshot = db.delta_log.change_counts(base_tables)
        table = self._run_select(session, statement, sql, use_summaries,
                                 tolerance)
        self.cache.store(key, table, base_tables, snapshot, tolerance)
        return table, "miss"

    def _fingerprint_for(self, statement, sql: str, use_summaries: bool):
        db = self.db
        memo_key = (sql, use_summaries)
        epoch = db.rewrite_epoch
        with self._memo_lock:
            entry = self._fingerprint_memo.get(memo_key)
            if entry is not None and entry[0] == epoch:
                return entry[1], entry[2]
        graph = build_graph(statement, db.catalog)
        fp_key = fingerprint(graph).key
        base_tables = sorted(graph.base_tables())
        with self._memo_lock:
            if len(self._fingerprint_memo) >= 4096:
                self._fingerprint_memo.clear()
            self._fingerprint_memo[memo_key] = (epoch, fp_key, base_tables)
        return fp_key, base_tables

    def _run_select(self, session: Session, statement, sql: str,
                    use_summaries: bool, tolerance):
        # a private parse: the dispatched statement may be a memoized
        # AST shared with concurrent requests
        return self.db.execute_statement(
            parse_statement(sql),
            sql,
            use_summary_tables=use_summaries,
            tolerance=tolerance,
            timeout_ms=session.timeout_ms,
            max_rows=session.max_rows,
            executor_parallel=session.executor_parallel,
            client=session.client_id,
        )

    def _execute_mutation(self, statement, sql: str) -> dict:
        db = self.db
        evict_base: set[str] = set()
        if isinstance(statement, DropSummaryTable):
            summary = db.summary_tables.get(statement.name.lower())
            if summary is not None:
                evict_base = set(summary.base_tables())
        elif isinstance(statement, RefreshSummaryTables):
            names = statement.names or tuple(db.summary_tables)
            for name in names:
                summary = db.summary_tables.get(name.lower())
                if summary is not None:
                    evict_base |= set(summary.base_tables())
        status = db.run_statement(parse_statement(sql), sql)
        if isinstance(statement, (InsertValues, DeleteValues)):
            if self.cache_enabled:
                self.cache.invalidate_table(statement.table)
        elif evict_base and self.cache_enabled:
            self.cache.evict_tables(evict_base)
        if not isinstance(status, str):
            status = str(status)
        return {"ok": True, "status": status}
