"""The asyncio query server: many clients, one shared ``Database``.

One :class:`QueryServer` wraps one :class:`~repro.engine.database.
Database`. Connections are handled on the event loop — framing, JSON,
dispatch — but every statement executes on a thread pool via
``run_in_executor``, so a long scan never blocks another client's
``ping``. Real concurrency control is the engine's own query governor:
the pool is sized *above* the admission limit on purpose, so overload
reaches :class:`~repro.governor.admission.AdmissionController` and
sheds load as typed ``QueryRejected`` errors instead of silently
queueing in the pool.

Request routing (see :mod:`repro.server.protocol` for the wire format):

* SELECT / UNION ALL — through the semantic result cache; on a miss the
  statement executes with the session's knobs passed as per-query
  overrides (never mutating shared state) and the result is cached
  with a pre-execution change-count snapshot.
* session-scoped SET — recorded on the connection's
  :class:`~repro.server.session.Session` only.
* INSERT / DELETE — executed, then the cache eagerly drops entries the
  write permanently killed.
* CREATE SUMMARY TABLE — executes; no eviction (a freshly built
  summary is exactly current, so answers are unchanged).
* DROP / REFRESH SUMMARY TABLE — executes, then stale-tolerant entries
  over the affected base tables are evicted (see
  :mod:`repro.server.result_cache`).
* EXPLAIN [ANALYZE] — runs with the session's freshness tolerance.

Durability and replication (see docs/ROBUSTNESS.md, "Durability &
failover") are opt-in per server:

* With a :class:`~repro.replication.wal.WriteAheadLog` attached, every
  journaled mutation is applied, staged under the mutation lock (so
  journal order equals apply order), and group-committed durable
  *before* its reply is sent. If the journal refuses the record, the
  in-memory mutation is rolled back and the client gets the error —
  the ACKed set is always a subset of the journal.
* Mutations carrying an ``idempotency token`` dedup against the
  :class:`~repro.replication.wal.DedupWindow`: a retried request whose
  original ACK was lost replays the recorded status instead of applying
  twice.
* ``repl.*`` ops serve a warm standby: ``repl.snapshot`` bootstraps it
  with the full database state, ``repl.stream`` tails the journal over
  the same line-delimited JSON wire (backlog, then live records and
  heartbeats, with optional acks flowing back for semi-sync), and
  ``repl.promote`` flips a read-only standby into a primary.
* A ``read_only=True`` server (the standby role) rejects mutations with
  :class:`~repro.errors.ReadOnlyError` and gates reads on replication
  lag through the session's ``SET REFRESH AGE`` tolerance — a read that
  would silently violate the requested freshness raises
  :class:`~repro.errors.ReplicaLagExceeded` instead.
"""

from __future__ import annotations

import asyncio
import errno
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.database import Database
from repro.obs import events as _events
from repro.obs import spans as _spans
from repro.obs.metrics import Histogram
from repro.errors import (
    BudgetExhausted,
    ReadOnlyError,
    ReplicaLagExceeded,
    ReplicationError,
    ReproError,
    WalGapError,
)
from repro.qgm.build import build_graph
from repro.qgm.fingerprint import fingerprint
from repro.resources.broker import BROKER
from repro.replication.wal import (
    DedupWindow,
    WalRecord,
    WriteAheadLog,
    mutation_kind,
)
from repro.server import protocol
from repro.server.result_cache import ResultCache, cache_key
from repro.server.session import SESSION_SET_TYPES, Session
from repro.sql.ast import SelectStatement, UnionAll
from repro.sql.statements import (
    CreateSummaryTable,
    CreateTable,
    DeleteValues,
    DropSummaryTable,
    Explain,
    InsertValues,
    RefreshSummaryTables,
    SetSlowQuery,
    SetTraceSample,
    parse_statement,
)
from repro.testing import faults


class QueryServer:
    """Line-delimited JSON query server around one shared database."""

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_enabled: bool = True,
        cache_size: int = 256,
        cache_max_bytes: int | None = None,
        max_workers: int = 32,
        wal: WriteAheadLog | None = None,
        read_only: bool = False,
        primary: str | None = None,
        repl_ack: int = 0,
        repl_ack_timeout_ms: float = 5000.0,
        dedup_tokens: int = 4096,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self.started_at = time.time()
        metrics = db.metrics
        # ---- durability & replication ----
        self.wal = wal
        self.dedup = DedupWindow(dedup_tokens)
        #: standby role: mutations rejected, reads gated on lag
        self.read_only = read_only
        #: ``host:port`` of the primary (the redirect hint a standby
        #: attaches to ReadOnlyError replies)
        self.primary = primary
        #: semi-sync: standby acks a mutation waits for before replying
        #: (0 = fully asynchronous replication)
        self.repl_ack = repl_ack
        self.repl_ack_timeout_ms = repl_ack_timeout_ms
        #: serializes mutations so apply order == journal order
        self._mutation_lock = threading.Lock()
        #: highest LSN applied locally (standby tracker; a primary's is
        #: implied by wal.durable_lsn)
        self.applied_lsn = wal.durable_lsn if wal is not None else 0
        #: the primary's durable LSN as last heard (standby, heartbeats)
        self._primary_durable = self.applied_lsn
        #: called by the repl.promote op when a standby wrapper (see
        #: repro.replication.standby) needs to stop its tailer first
        self.on_promote = None
        self._subscribers: dict[int, asyncio.Queue] = {}
        self._subscriber_lock = threading.Lock()
        self._next_subscriber = 0
        self._ack_cond = threading.Condition()
        self._standby_acks: dict[object, int] = {}
        #: set by stop(): wakes semi-sync ack waiters so a graceful
        #: drain is not held hostage by the ack timeout (the records
        #: are already durable locally — availability over strictness)
        self._draining = threading.Event()
        #: tokens whose mutation is mid-flight: a concurrent retry of
        #: the same token parks on the event instead of double-applying
        self._inflight: dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()
        #: wall-clock when nonzero replication lag first appeared (for
        #: the status surface's lag-in-seconds; None while caught up)
        self._lag_since: float | None = None
        #: LSN → originating trace_id for journaled mutations, so the
        #: replication stream can link the standby's apply span to the
        #: client's trace (bounded; only populated while tracing is on)
        self._trace_by_lsn: dict[int, str] = {}
        self._trace_lock = threading.Lock()
        if wal is not None:
            wal.on_durable = self._on_durable
        #: journal disk exhausted (ENOSPC): mutations are refused with
        #: ReadOnlyError until a writability probe succeeds — reads and
        #: the already-durable state stay available, the process lives
        self._disk_full = False
        self.cache_enabled = cache_enabled
        self.cache = ResultCache(
            db.delta_log,
            metrics=metrics,
            max_entries=cache_size,
            max_bytes=cache_max_bytes,
        )
        # Under global memory pressure the broker calls back into the
        # result cache: cached tables are the cheapest bytes to give up.
        BROKER.add_shedder(self._shed_cache)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-server"
        )
        # Two hot-path memos, both keyed by raw SQL text. Parsing and
        # binding the same text are deterministic, so on the
        # repeat-heavy path their cost is paid once per unique
        # statement (per catalog epoch for the fingerprint) instead of
        # once per request. Memoized ASTs are shared across threads for
        # read-only dispatch and fingerprinting ONLY — anything that
        # executes re-parses a private copy.
        self._parse_memo: dict = {}
        self._fingerprint_memo: dict = {}
        self._memo_lock = threading.Lock()
        self._next_client = 0
        self._client_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self.connections = metrics.gauge(
            "server.connections", "Client connections currently open"
        )
        self.connections_total = metrics.counter(
            "server.connections_total", "Client connections accepted"
        )
        self.requests = metrics.counter(
            "server.requests", "Requests received (all ops)"
        )
        self.errors = metrics.counter(
            "server.errors", "Requests answered with an error response"
        )
        self.request_ms = metrics.histogram(
            "server.request_ms", "Wall-clock per request, milliseconds"
        )
        self.wal_records = metrics.counter(
            "server.wal_records", "Mutations journaled before their ACK"
        )
        self.deduped = metrics.counter(
            "server.deduped", "Mutations answered from the dedup window"
        )
        self.repl_lag = metrics.gauge(
            "server.repl_lag", "Standby: journal records behind the primary"
        )

    # ------------------------------------------------------------------
    # lifecycle
    async def _main(self, started: threading.Event | None = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.address = server.sockets[0].getsockname()[:2]
        _events.emit(
            "server.start",
            host=self.address[0], port=self.address[1],
            role="standby" if self.read_only else "primary",
        )
        if started is not None:
            started.set()
        async with server:
            await self._stop_event.wait()
        # Graceful drain: closing each transport makes the handler's
        # pending readline() return EOF, so the handlers finish on their
        # own instead of being cancelled mid-await by asyncio.run().
        for writer in list(self._writers):
            writer.close()
        if self._tasks:
            await asyncio.wait(self._tasks, timeout=5)

    def serve(self) -> None:
        """Run the server on the calling thread until interrupted
        (``repro serve``)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass

    def start_in_thread(self) -> tuple[str, int]:
        """Run the server on a daemon thread; returns ``(host, port)``
        once it is accepting connections (tests, benchmarks, and the
        CLI's embedded mode)."""
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(started)),
            name="repro-server-loop",
            daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout=10):
            raise RuntimeError("server failed to start within 10 s")
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread.

        Drains connections, then flushes the journal — on a graceful
        shutdown every acknowledged (and even every applied-but-not-yet
        -fsynced) mutation is durable before the process exits.
        Idempotent: a second call (a test fixture's teardown after an
        explicit stop) is a no-op."""
        if self._draining.is_set():
            return
        self._draining.set()
        _events.emit(
            "server.drain",
            connections=int(self.connections.value),
            requests=self.requests.value,
        )
        with self._ack_cond:
            self._ack_cond.notify_all()
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._pool.shutdown(wait=False)
        BROKER.remove_shedder(self._shed_cache)
        if self.wal is not None:
            try:
                self.wal.flush()
            except ReproError:  # pragma: no cover - best-effort drain
                pass

    # ------------------------------------------------------------------
    # connection handling
    def _new_client_id(self) -> str:
        with self._client_lock:
            self._next_client += 1
            return f"client-{self._next_client}"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(self._new_client_id())
        self.connections.inc()
        self.connections_total.inc()
        _events.emit("conn.open", client=session.client_id)
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: a line exceeded the stream limit — the
                    # peer is buggy or hostile; drop the connection.
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    break
                response = await self._handle_request(session, line)
                stream_after = response.pop("_stream", None)
                writer.write(protocol.encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                if stream_after is not None:
                    # The connection now belongs to the replication
                    # stream; when it ends (standby gone, injected
                    # fault, shutdown), the connection closes.
                    await self._stream_journal(reader, writer, stream_after)
                    break
        except asyncio.CancelledError:
            # shutdown cancelled this handler mid-request: the drain is
            # deliberate, not an error worth a traceback in the logs
            pass
        finally:
            self.connections.dec()
            _events.emit(
                "conn.close", client=session.client_id,
                queries=session.queries,
            )
            self._writers.discard(writer)
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request(self, session: Session, line: bytes) -> dict:
        started = time.perf_counter()
        self.requests.inc()
        request_id = None
        req_span = None
        try:
            request = protocol.decode_message(line)
            request_id = request.get("id")
            op = request.get("op")
            tracer = _spans.TRACER
            if tracer is not None:
                # Continue the client's trace; when the request carried
                # no context (an untraced or unsampled caller) the
                # server flips its own sampling coin, so --trace-sample
                # works without client cooperation.
                span = tracer.continue_trace(
                    "server.request", request.get("trace"),
                    op=op, client=session.client_id,
                )
                if not span:
                    span = tracer.start_trace(
                        "server.request", op=op, client=session.client_id,
                    )
                if span:
                    req_span = span
            if op == "ping":
                response = {"ok": True, "pong": True,
                            "session": session.describe()}
            elif op == "status":
                response = await self._run_blocking(
                    lambda: {"ok": True, "status": self.status()}
                )
            elif op == "metrics":
                response = {"ok": True, "metrics": self.db.metrics.to_dict()}
            elif op == "governor":
                response = {
                    "ok": True,
                    "governor": self.db.governor.describe_lines(),
                }
            elif op == "repl.status":
                response = {"ok": True, "replication": self.repl_status()}
            elif op == "repl.snapshot":
                response = await self._run_blocking(self._snapshot_response)
            elif op == "repl.stream":
                if self.wal is None:
                    raise protocol.ProtocolError(
                        "this server has no journal to stream"
                    )
                after = int(request.get("after", 0))
                if not self.wal.covers(after):
                    # Checkpoint compaction deleted part of the backlog
                    # this subscriber needs; a typed refusal here sends
                    # the standby back to a fresh snapshot bootstrap
                    # instead of letting it consume a gapped stream.
                    raise WalGapError(
                        f"journal backlog after lsn {after} is gone "
                        f"(checkpoint at {self.wal.checkpoint_lsn}); "
                        "bootstrap from a fresh snapshot"
                    )
                response = {
                    "ok": True,
                    "streaming": True,
                    "after": after,
                    "durable_lsn": self.wal.durable_lsn,
                    "_stream": after,
                }
            elif op == "repl.ack":
                lsn = int(request.get("lsn", 0))
                self._note_ack(f"conn-{session.client_id}", lsn)
                response = {"ok": True, "acked": lsn}
            elif op == "repl.promote":
                response = await self._run_blocking(self._promote_response)
            elif op in ("query", "set", "explain"):
                sql = request.get("sql")
                if not isinstance(sql, str):
                    raise protocol.ProtocolError(
                        f"op {op!r} requires a string 'sql' field"
                    )
                response = await self._run_blocking(
                    self._execute_request, session, op, sql, request,
                    req_span,
                )
            else:
                raise protocol.ProtocolError(f"unknown op {op!r}")
        except ReproError as error:
            self.errors.inc()
            response = {"ok": False, "error": protocol.error_payload(error)}
        except Exception as error:  # noqa: BLE001 - wire boundary
            self.errors.inc()
            response = {"ok": False, "error": protocol.error_payload(error)}
        response.setdefault("ok", True)
        if request_id is not None:
            response["id"] = request_id
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.request_ms.observe(elapsed_ms)
        response["elapsed_ms"] = elapsed_ms
        if req_span is not None:
            if not response["ok"]:
                error_info = response.get("error") or {}
                req_span.set("error", error_info.get("type", "error"))
            req_span.finish(ok=response["ok"])
        return response

    async def _run_blocking(self, fn, *args):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._pool, fn, *args)

    # ------------------------------------------------------------------
    # statement execution (thread-pool side)
    def _cached_parse(self, sql: str):
        with self._memo_lock:
            statement = self._parse_memo.get(sql)
        if statement is None:
            statement = parse_statement(sql)
            with self._memo_lock:
                if len(self._parse_memo) >= 4096:
                    self._parse_memo.clear()
                self._parse_memo[sql] = statement
        return statement

    def _execute_request(
        self, session: Session, op: str, sql: str, request: dict,
        req_span=None,
    ) -> dict:
        # The request span was created on the event loop; re-attach it
        # on this pool thread so child spans (parse, admission, rewrite,
        # WAL) nest under it. The loop side finishes it.
        with _spans.attach(req_span):
            return self._execute_attached(session, op, sql, request)

    def _execute_attached(
        self, session: Session, op: str, sql: str, request: dict
    ) -> dict:
        parse_pc = time.perf_counter()
        statement = self._cached_parse(sql)
        _spans.record("server.parse", parse_pc)
        if op == "set" and not isinstance(
            statement, SESSION_SET_TYPES + (SetSlowQuery, SetTraceSample)
        ):
            raise protocol.ProtocolError("op 'set' accepts only SET statements")
        if op == "explain" or isinstance(statement, Explain):
            if isinstance(statement, Explain):
                inner, analyze = statement.sql, statement.analyze
            else:
                inner, analyze = sql, bool(request.get("analyze"))
            if analyze:
                text = self.db.explain_analyze(inner)
            else:
                text = self.db.explain(
                    inner, tolerance=session.effective_tolerance(self.db)
                )
            return {"ok": True, "text": text}
        status = session.apply_set(statement)
        if status is not None:
            return {"ok": True, "status": status}
        if isinstance(statement, (SelectStatement, UnionAll)):
            session.queries += 1
            use_summaries = bool(request.get("use_summary_tables", True))
            table, label = self._execute_select(
                session, statement, sql, use_summaries
            )
            return {
                "ok": True,
                "table": protocol.encode_table(table),
                "cache": label,
            }
        return self._execute_mutation(statement, sql, request)

    def _execute_select(self, session: Session, statement, sql: str,
                        use_summaries: bool):
        db = self.db
        tolerance = session.effective_tolerance(db)
        if self.read_only:
            # The standby serves reads only when its lag fits the
            # session's freshness tolerance — the same contract SET
            # REFRESH AGE gives stale summary tables, applied to the
            # whole replica: N records behind is admissible iff the
            # session tolerates N pending changes.
            lag = self.replication_lag()
            if not tolerance.admits(lag):
                raise ReplicaLagExceeded(
                    f"standby is {lag} record(s) behind the primary; "
                    f"SET REFRESH AGE {lag} (or ANY) to read at this lag"
                )
        if not self.cache_enabled:
            table = self._run_select(session, statement, sql, use_summaries,
                                     tolerance)
            return table, "bypass"
        fp_key, base_tables = self._fingerprint_for(
            statement, sql, use_summaries
        )
        key = cache_key(fp_key, tolerance, use_summaries)
        lookup_pc = time.perf_counter()
        hit = self.cache.lookup(key)
        if hit is not None:
            table, label = hit
            _spans.record("cache.lookup", lookup_pc, outcome=label)
            max_rows = session.effective_max_rows(db)
            if max_rows is not None and len(table.rows) > max_rows:
                # Governed execution would have stopped at the cap;
                # serving the oversized cached result would bypass it.
                raise BudgetExhausted(
                    f"result has {len(table.rows)} rows, exceeds "
                    f"QUERY MAXROWS {max_rows}"
                )
            return table, label
        _spans.record("cache.lookup", lookup_pc, outcome="miss")
        # Snapshot BEFORE execution: a write landing mid-query makes the
        # entry look staler than it is — the safe direction.
        snapshot = db.delta_log.change_counts(base_tables)
        table = self._run_select(session, statement, sql, use_summaries,
                                 tolerance)
        self.cache.store(key, table, base_tables, snapshot, tolerance)
        return table, "miss"

    def _fingerprint_for(self, statement, sql: str, use_summaries: bool):
        db = self.db
        memo_key = (sql, use_summaries)
        epoch = db.rewrite_epoch
        with self._memo_lock:
            entry = self._fingerprint_memo.get(memo_key)
            if entry is not None and entry[0] == epoch:
                return entry[1], entry[2]
        graph = build_graph(statement, db.catalog)
        fp_key = fingerprint(graph).key
        base_tables = sorted(graph.base_tables())
        with self._memo_lock:
            if len(self._fingerprint_memo) >= 4096:
                self._fingerprint_memo.clear()
            self._fingerprint_memo[memo_key] = (epoch, fp_key, base_tables)
        return fp_key, base_tables

    def _run_select(self, session: Session, statement, sql: str,
                    use_summaries: bool, tolerance):
        # a private parse: the dispatched statement may be a memoized
        # AST shared with concurrent requests
        return self.db.execute_statement(
            parse_statement(sql),
            sql,
            use_summary_tables=use_summaries,
            tolerance=tolerance,
            timeout_ms=session.timeout_ms,
            max_rows=session.max_rows,
            max_mem=session.max_mem,
            executor_parallel=session.executor_parallel,
            client=session.client_id,
        )

    def _shed_cache(self, target: int) -> int:
        """Memory-broker shedder: free ~``target`` bytes of cached
        results (oldest first); returns the bytes actually freed."""
        return self.cache.shed(target)

    def _execute_mutation(self, statement, sql: str, request: dict) -> dict:
        db = self.db
        if self.read_only:
            hint = f" (primary: {self.primary})" if self.primary else ""
            raise ReadOnlyError(
                f"this server is a read-only standby{hint}; "
                "send mutations to the primary"
            )
        if self._disk_full:
            self._check_disk_recovered()
        kind = mutation_kind(statement)
        token = request.get("token") if kind is not None else None
        if token is not None:
            deduped = self._claim_token(token)
            if deduped is not None:
                # A retry of a mutation we already applied (its ACK was
                # lost in flight): replay the original status, apply
                # nothing — exactly-once from the client's view.
                self.deduped.inc()
                return {"ok": True, "status": deduped, "deduped": True}
            try:
                return self._execute_claimed(statement, sql, kind, token)
            finally:
                self._release_token(token)
        return self._execute_claimed(statement, sql, kind, token)

    def _claim_token(self, token: str) -> str | None:
        """Claim ``token`` for this request, or return the recorded
        status when it already completed. A retry that races the
        original request (the client gave up waiting, the server is
        still executing) parks here until the original finishes —
        without this, dedup-on-completion alone would double-apply."""
        while True:
            prior = self.dedup.get(token)
            if prior is not None:
                return prior
            with self._inflight_lock:
                pending = self._inflight.get(token)
                if pending is None:
                    self._inflight[token] = threading.Event()
                    return None
            pending.wait(timeout=60)

    def _release_token(self, token: str) -> None:
        with self._inflight_lock:
            pending = self._inflight.pop(token, None)
        if pending is not None:
            pending.set()

    def _execute_claimed(
        self, statement, sql: str, kind: str | None, token: str | None
    ) -> dict:
        db = self.db
        evict_base = self._evict_targets(statement)
        if self.wal is None or kind is None:
            status = str(db.run_statement(parse_statement(sql), sql))
            self._invalidate_for(statement, evict_base)
            if token is not None:
                # No journal does not mean no dedup: a retry after a
                # lost ACK must still replay the recorded status instead
                # of applying twice.
                self.dedup.put(token, status)
            return {"ok": True, "status": status}
        # Journaled path: apply, stage under the mutation lock (journal
        # order == apply order), then group-commit OUTSIDE the lock so
        # concurrent mutations share one fsync. A journal failure rolls
        # the in-memory apply back — an unjournaled mutation is never
        # acknowledged, so ACKed writes are always a subset of the log.
        with self._mutation_lock:
            undo = self._prepare_undo(statement)
            status = str(db.run_statement(parse_statement(sql), sql))
            # Note the trace BEFORE staging: the stream thread ships a
            # record the moment it is staged, and the standby must find
            # the mapping already in place. Staging is serialized under
            # the mutation lock, so the next LSN is deterministic.
            predicted_lsn = self.wal.last_lsn + 1
            self._note_trace_lsn(predicted_lsn)
            try:
                lsn = self.wal.stage(kind, sql, token=token, status=status)
            except BaseException as error:
                self._note_disk_error(error)
                self._drop_trace_lsn(predicted_lsn)
                self._apply_undo(undo)
                raise
            if kind in ("ddl", "refresh"):
                # DDL commits while still holding the lock: its undo is
                # only safe before any later mutation builds on the new
                # catalog state. Rare enough that serializing is fine.
                try:
                    self.wal.commit(lsn)
                except BaseException as error:
                    self._note_disk_error(error)
                    self._apply_undo(undo)
                    raise
                committed = True
            else:
                committed = False
        if not committed:
            try:
                self.wal.commit(lsn)
            except BaseException as error:
                # The whole failed batch rolls back (each committer
                # undoes its own record); value-based inserts/deletes
                # commute, so the order of undos does not matter.
                self._note_disk_error(error)
                with self._mutation_lock:
                    self._apply_undo(undo)
                raise
        self.wal_records.inc()
        if token is not None:
            self.dedup.put(token, status)
        self.applied_lsn = max(self.applied_lsn, lsn)
        self._invalidate_for(statement, evict_base)
        if self.repl_ack > 0:
            ack_pc = time.perf_counter()
            acks = self._await_acks(lsn)
            _spans.record("repl.ack_wait", ack_pc, lsn=lsn, acks=acks)
        else:
            acks = 0
        self._maybe_checkpoint()
        response = {"ok": True, "status": status, "lsn": lsn}
        if self.repl_ack > 0:
            response["repl_acks"] = acks
        return response

    def _note_trace_lsn(self, lsn: int) -> None:
        """Remember which trace journaled ``lsn`` so the replication
        stream can ship the id and the standby's apply span joins the
        same trace (bounded map; empty while tracing is off)."""
        trace_id = _spans.current_trace_id()
        if trace_id is None:
            return
        with self._trace_lock:
            if len(self._trace_by_lsn) >= 1024:
                self._trace_by_lsn.clear()
            self._trace_by_lsn[lsn] = trace_id

    def _drop_trace_lsn(self, lsn: int) -> None:
        """Forget a predicted mapping whose staging failed (the LSN will
        be reassigned to some other mutation's record)."""
        with self._trace_lock:
            self._trace_by_lsn.pop(lsn, None)

    def _evict_targets(self, statement) -> set[str]:
        db = self.db
        evict_base: set[str] = set()
        if isinstance(statement, DropSummaryTable):
            summary = db.summary_tables.get(statement.name.lower())
            if summary is not None:
                evict_base = set(summary.base_tables())
        elif isinstance(statement, RefreshSummaryTables):
            names = statement.names or tuple(db.summary_tables)
            for name in names:
                summary = db.summary_tables.get(name.lower())
                if summary is not None:
                    evict_base |= set(summary.base_tables())
        return evict_base

    def _invalidate_for(self, statement, evict_base: set[str]) -> None:
        if not self.cache_enabled:
            return
        if isinstance(statement, (InsertValues, DeleteValues)):
            self.cache.invalidate_table(statement.table)
        elif evict_base:
            self.cache.evict_tables(evict_base)

    def _prepare_undo(self, statement):
        """The inverse operation for ``statement``, captured BEFORE it
        applies (a DROP's undo needs the summary's definition while it
        still exists). REFRESH has no undo — recomputation is
        content-idempotent, so a journal failure after it leaves the
        database consistent either way."""
        db = self.db
        if isinstance(statement, InsertValues):
            return ("delete_rows", statement.table, statement.rows)
        if isinstance(statement, DeleteValues):
            return ("insert_rows", statement.table, statement.rows)
        if isinstance(statement, CreateTable):
            return ("drop_table", statement.name)
        if isinstance(statement, CreateSummaryTable):
            return ("drop_summary", statement.name)
        if isinstance(statement, DropSummaryTable):
            summary = db.summary_tables.get(statement.name.lower())
            if summary is not None:
                return (
                    "recreate_summary",
                    summary.name,
                    summary.sql,
                    summary.refresh.mode,
                )
        return None

    def _apply_undo(self, undo) -> None:
        """Best-effort rollback of an applied-but-unjournaled mutation.
        A failing undo is swallowed: the original journal error is
        already propagating, and the journal (not memory) is the
        durability source of truth."""
        if undo is None:
            return
        db = self.db
        try:
            action = undo[0]
            if action == "delete_rows":
                db.delete_rows(undo[1], undo[2])
            elif action == "insert_rows":
                db.insert_rows(undo[1], undo[2])
            elif action == "drop_table":
                with db._catalog_lock:
                    db.catalog.drop_table(undo[1])
                    db.tables.pop(undo[1].lower(), None)
                    db._bump_rewrite_epoch()
            elif action == "drop_summary":
                db.drop_summary_table(undo[1])
            elif action == "recreate_summary":
                db.create_summary_table(undo[1], undo[2], refresh_mode=undo[3])
        except Exception:  # noqa: BLE001 - rollback is best-effort
            pass

    # ------------------------------------------------------------------
    # disk-full degradation (ENOSPC → read-only, never a crash)
    @staticmethod
    def _is_disk_full(error: BaseException) -> bool:
        """Walk the exception chain looking for an ``OSError`` with
        errno ENOSPC (the WAL wraps append/fsync/checkpoint failures in
        typed errors, so the OSError usually sits in ``__cause__``)."""
        seen: set[int] = set()
        current: BaseException | None = error
        while current is not None and id(current) not in seen:
            seen.add(id(current))
            if (
                isinstance(current, OSError)
                and current.errno == errno.ENOSPC
            ):
                return True
            current = current.__cause__ or current.__context__
        return False

    def _note_disk_error(self, error: BaseException) -> bool:
        """Classify a journal/checkpoint failure: on ENOSPC, flip the
        server read-only-for-mutations and emit ``wal.disk_full`` (once
        per episode). Returns True when the error was disk exhaustion."""
        if not self._is_disk_full(error):
            return False
        if not self._disk_full:
            self._disk_full = True
            _events.emit(
                "wal.disk_full",
                error=str(error),
                durable_lsn=(
                    self.wal.durable_lsn if self.wal is not None else 0
                ),
            )
        return True

    def _check_disk_recovered(self) -> None:
        """Probe the journal volume; clear the degradation flag when
        space has returned, else refuse the mutation with the standby's
        typed ReadOnlyError (same wire path, same client handling)."""
        if self.wal is not None:
            try:
                self.wal.probe_writable()
            except (OSError, ReproError):
                raise ReadOnlyError(
                    "journal disk is full; this server is read-only "
                    "until space is freed (reads still served)"
                ) from None
        self._disk_full = False
        _events.emit(
            "wal.disk_recovered",
            durable_lsn=self.wal.durable_lsn if self.wal is not None else 0,
        )

    # ------------------------------------------------------------------
    # replication: status, snapshot, streaming, promotion
    def replication_lag(self) -> int:
        """Standby: durable journal records this replica has not applied
        yet (0 on a primary, and on a standby that is fully caught up as
        of the last heartbeat)."""
        return max(0, self._primary_durable - self.applied_lsn)

    def note_primary_durable(self, lsn: int) -> None:
        """Standby tailer: record the primary's durable LSN (from a
        heartbeat or a shipped batch) so lag is observable even while
        no records are flowing."""
        self._primary_durable = max(self._primary_durable, lsn)
        lag = self.replication_lag()
        self.repl_lag.set(lag)
        self._note_lag(lag)

    def _note_lag(self, lag: int) -> None:
        """Maintain the wall-clock marker behind ``lag_seconds``: set
        when nonzero lag first appears, cleared once caught up."""
        if lag > 0:
            if self._lag_since is None:
                self._lag_since = time.time()
        else:
            self._lag_since = None

    def lag_seconds(self) -> float:
        """How long this replica has continuously been behind, in
        seconds (0.0 while caught up)."""
        since = self._lag_since
        if since is None or self.replication_lag() == 0:
            return 0.0
        return max(0.0, time.time() - since)

    def repl_status(self) -> dict:
        wal = self.wal
        status = {
            "role": "standby" if self.read_only else "primary",
            "read_only": self.read_only,
            "applied_lsn": self.applied_lsn,
            "lag": self.replication_lag(),
            "lag_seconds": round(self.lag_seconds(), 3),
            "dedup_tokens": len(self.dedup),
        }
        if self.primary:
            status["primary"] = self.primary
        if wal is not None:
            status.update(
                durable_lsn=wal.durable_lsn,
                checkpoint_lsn=wal.checkpoint_lsn,
                checkpoints=wal.checkpoints,
                sync=wal.sync,
            )
        with self._subscriber_lock:
            status["subscribers"] = len(self._subscribers)
        return status

    # ------------------------------------------------------------------
    # cluster health surface (the `status` op / \status)
    def status(self) -> dict:
        """One aggregated health view: role, replication lag (records +
        seconds), WAL depth since the last checkpoint, result-cache hit
        rates, governor admission/breaker state, refresh backlog, and
        p50/p95/p99 from every live histogram."""
        db = self.db
        wal = self.wal
        status: dict = {
            "role": "standby" if self.read_only else "primary",
            "uptime_s": round(time.time() - self.started_at, 3),
            "connections": int(self.connections.value),
            "requests": self.requests.value,
            "errors": self.errors.value,
            "replication": self.repl_status(),
        }
        if self.address is not None:
            status["address"] = f"{self.address[0]}:{self.address[1]}"
        if wal is not None:
            status["wal"] = {
                "depth_since_checkpoint": wal.last_lsn - wal.checkpoint_lsn,
                "last_lsn": wal.last_lsn,
                "durable_lsn": wal.durable_lsn,
                "checkpoint_lsn": wal.checkpoint_lsn,
                "checkpoints": wal.checkpoints,
                "sync": wal.sync,
                "disk_full": self._disk_full,
            }
        status["cache"] = self._cache_status()
        status["memory"] = BROKER.snapshot()
        status["governor"] = {
            "admission": db.governor.admission.snapshot(),
            "breaker": db.governor.breaker.snapshot(),
        }
        scheduler = db.refresh_scheduler
        status["refresh"] = {
            "queued": scheduler.queued,
            "pending_retries": scheduler.pending_retries,
            "quarantined": sorted(
                s.name for s in db.quarantined_summary_tables()
            ),
        }
        status["latency_ms"] = self._latency_status()
        tracer = _spans.TRACER
        tracing: dict = {"enabled": tracer is not None}
        if tracer is not None:
            tracing.update(
                sample_rate=tracer.sample_rate,
                spans=len(tracer.buffer),
                dropped=tracer.buffer.dropped,
            )
        status["tracing"] = tracing
        return status

    def _cache_status(self) -> dict:
        metrics = self.db.metrics

        def value(name: str) -> int:
            metric = metrics.get(name)
            return int(metric.value) if metric is not None else 0

        hits = value("cache.hits")
        stale = value("cache.stale_hits")
        misses = value("cache.misses")
        lookups = hits + stale + misses
        return {
            "enabled": self.cache_enabled,
            "entries": len(self.cache),
            "bytes": self.cache.nbytes,
            "max_bytes": self.cache.max_bytes,
            "hits": hits,
            "stale_hits": stale,
            "misses": misses,
            "hit_rate": (
                round((hits + stale) / lookups, 4) if lookups else None
            ),
        }

    def _latency_status(self) -> dict:
        metrics = self.db.metrics
        latency: dict = {}
        for name in metrics.names():
            metric = metrics.get(name)
            if not isinstance(metric, Histogram):
                continue
            described = metric.describe()
            if not described["count"]:
                continue
            latency[name] = {
                "count": described["count"],
                "p50": described["p50"],
                "p95": described["p95"],
                "p99": described["p99"],
            }
        return latency

    def _snapshot_response(self) -> dict:
        """A consistent full-state snapshot for standby bootstrap: built
        under the mutation lock, so it corresponds exactly to the
        journal prefix up to the reported LSN."""
        from repro.engine.persist import database_state_payload

        with self._mutation_lock:
            if self.wal is not None:
                # Drain the journal while holding the lock: the state we
                # are about to capture includes every applied+staged
                # mutation, including ones whose group-commit fsync is
                # still in flight outside the lock. Reporting a durable
                # LSN below those would make the stream re-ship them and
                # the standby double-apply. After the drain every staged
                # record is durable, so durable_lsn IS the state's
                # watermark. (A staged record whose flush failed — it
                # rolls back once we release the lock — aborts the
                # snapshot instead of leaking its effect to the standby.)
                self.wal.flush()
                lsn = self.wal.durable_lsn
                if lsn < self.wal.last_lsn:
                    raise ReplicationError(
                        "snapshot aborted: a journal flush failed with "
                        "mutations in flight; retry"
                    )
            else:
                lsn = self.applied_lsn
            state = database_state_payload(self.db)
            tokens = self.dedup.snapshot()
        return {"ok": True, "state": state, "lsn": lsn, "tokens": tokens}

    def promote(self) -> dict:
        """Flip this standby into a primary: mutations are accepted (and
        journaled, when a journal is attached) from here on."""
        self.read_only = False
        self._primary_durable = self.applied_lsn
        self.repl_lag.set(0)
        self._lag_since = None
        _events.emit("standby.promote", applied_lsn=self.applied_lsn)
        return {"role": "primary", "applied_lsn": self.applied_lsn}

    def _promote_response(self) -> dict:
        if not self.read_only:
            raise ReproError("this server is already a primary")
        if self.on_promote is not None:
            promoted = self.on_promote()
        else:
            promoted = self.promote()
        return {"ok": True, "promoted": promoted}

    def reset_database(
        self, db: Database, lsn: int, tokens: dict[str, str] | None = None
    ) -> None:
        """Replace the served database wholesale (standby re-bootstrap:
        the primary's journal no longer covers our position, so the
        tailer fetched a fresh snapshot at ``lsn``). Re-anchors the
        local journal at ``lsn`` and drops caches built over the old
        database."""
        with self._mutation_lock:
            if self.wal is not None:
                self.wal.rebase(db, tokens=tokens or {}, base_lsn=lsn)
            self.db = db
            self.cache = ResultCache(
                db.delta_log,
                metrics=db.metrics,
                max_entries=self.cache.max_entries,
                max_bytes=self.cache.max_bytes,
            )
            with self._memo_lock:
                # fingerprints are epoch-keyed per database; the new
                # database restarts its epoch counter
                self._fingerprint_memo.clear()
            self.dedup.seed(tokens or {})
            self.applied_lsn = lsn
            self._primary_durable = max(self._primary_durable, lsn)
        lag = self.replication_lag()
        self.repl_lag.set(lag)
        self._note_lag(lag)

    def apply_replicated(
        self, record: WalRecord, trace_id: str | None = None
    ) -> None:
        """Standby: apply one shipped journal record — execute its SQL,
        journal it locally under the primary's LSN, remember its token.
        Called by the standby's tailer thread, in LSN order.
        ``trace_id`` (shipped on the stream when the primary traced the
        originating mutation) joins the apply span to that trace."""
        tracer = _spans.TRACER
        span = (
            tracer.root_for(
                "standby.apply", trace_id,
                lsn=record.lsn, kind=record.kind,
            )
            if tracer is not None
            else _spans.NOOP
        )
        with span:
            statement = parse_statement(record.sql)
            evict_base = self._evict_targets(statement)
            with self._mutation_lock:
                self.db.run_statement(statement, record.sql)
                if self.wal is not None:
                    self.wal.stage_record(record)
                self.applied_lsn = max(self.applied_lsn, record.lsn)
            if self.wal is not None:
                self.wal.commit(record.lsn)
            if record.token is not None:
                self.dedup.put(record.token, record.status)
            self._invalidate_for(statement, evict_base)
            lag = self.replication_lag()
            self.repl_lag.set(lag)
            self._note_lag(lag)
            self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        wal = self.wal
        if wal is None or not wal.should_checkpoint():
            return
        with self._mutation_lock:
            if not wal.should_checkpoint():  # another thread beat us
                return
            # The maintenance lock parks the background refresh worker,
            # so the snapshot sees no concurrent summary rewrites.
            with self.db._maintenance_lock:
                try:
                    wal.checkpoint(self.db, self.dedup.snapshot())
                except Exception as error:  # noqa: BLE001
                    # A full disk must not fail the mutation that
                    # triggered the checkpoint — the record itself is
                    # already durable; compaction just waits for space.
                    if not self._note_disk_error(error):
                        raise

    # ---- journal streaming (primary side) ----
    def _subscribe(self) -> tuple[int, asyncio.Queue]:
        queue: asyncio.Queue = asyncio.Queue()
        with self._subscriber_lock:
            self._next_subscriber += 1
            sid = self._next_subscriber
            self._subscribers[sid] = queue
        return sid, queue

    def _unsubscribe(self, sid: int) -> None:
        with self._subscriber_lock:
            self._subscribers.pop(sid, None)
        with self._ack_cond:
            self._standby_acks.pop(sid, None)
            self._ack_cond.notify_all()

    def _on_durable(self, records: list[WalRecord]) -> None:
        """WriteAheadLog callback (pool thread): fan a durable batch out
        to every streaming subscriber on the event loop."""
        loop = self._loop
        if loop is None:
            return
        with self._subscriber_lock:
            queues = list(self._subscribers.values())
        for queue in queues:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, records)
            except RuntimeError:  # loop already closed (shutdown race)
                return

    def _note_ack(self, who, lsn: int) -> None:
        with self._ack_cond:
            if lsn > self._standby_acks.get(who, 0):
                self._standby_acks[who] = lsn
                self._ack_cond.notify_all()

    def _await_acks(self, lsn: int) -> int:
        """Semi-sync wait: block until ``repl_ack`` standbys acked
        ``lsn`` or the timeout passes (availability wins over strictness
        — the record is already durable locally)."""
        if self.repl_ack <= 0:
            return 0
        deadline = time.monotonic() + self.repl_ack_timeout_ms / 1000.0
        with self._ack_cond:
            while True:
                count = sum(
                    1 for acked in self._standby_acks.values()
                    if acked >= lsn
                )
                if count >= self.repl_ack:
                    return count
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._draining.is_set():
                    return count
                self._ack_cond.wait(remaining)

    async def _stream_journal(self, reader, writer, after: int) -> None:
        """Serve one ``repl.stream`` subscription: durable backlog
        first, then live batches as they fsync, with heartbeats while
        idle. Acks (`repl.ack` lines) flow back on the same connection
        for semi-sync. Any error — including an injected
        ``repl.stream`` fault — drops the connection; the standby
        reconnects and resumes from its applied LSN."""
        assert self.wal is not None
        sid, queue = self._subscribe()
        ack_task = asyncio.ensure_future(self._read_stream_acks(reader, sid))
        try:
            backlog = await self._run_blocking(self.wal.records_after, after)
            sent = await self._send_records(writer, backlog, after)
            while not self._stop_event.is_set():
                try:
                    batch = await asyncio.wait_for(queue.get(), timeout=0.5)
                except asyncio.TimeoutError:
                    writer.write(protocol.encode_message({
                        "repl": "heartbeat",
                        "durable_lsn": self.wal.durable_lsn,
                    }))
                    await writer.drain()
                    continue
                sent = await self._send_records(writer, batch, sent)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        except Exception:  # noqa: BLE001 - injected faults drop the link
            pass
        finally:
            ack_task.cancel()
            self._unsubscribe(sid)

    async def _send_records(self, writer, records, sent: int) -> int:
        fresh = [r for r in records if r.lsn > sent]
        if not fresh:
            return sent
        for _ in fresh:
            faults.fire("repl.stream")
        with self._trace_lock:
            traces = {
                r.lsn: self._trace_by_lsn[r.lsn]
                for r in fresh
                if r.lsn in self._trace_by_lsn
            }
        entries = []
        for r in fresh:
            entry = {
                "lsn": r.lsn,
                "kind": r.kind,
                "sql": r.sql,
                "token": r.token,
                "status": r.status,
            }
            trace_id = traces.get(r.lsn)
            if trace_id is not None:
                entry["trace"] = trace_id
            entries.append(entry)
        writer.write(protocol.encode_message({
            "repl": "records",
            "records": entries,
            "durable_lsn": self.wal.durable_lsn,
        }))
        await writer.drain()
        return fresh[-1].lsn

    async def _read_stream_acks(self, reader, sid: int) -> None:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, ValueError):
                return
            if not line:
                return
            try:
                message = protocol.decode_message(line)
            except Exception:  # noqa: BLE001 - ignore junk on the wire
                continue
            if message.get("op") == "repl.ack":
                self._note_ack(sid, int(message.get("lsn", 0)))
