"""The semantic result cache: fingerprint keys, LSN invalidation.

A wall-clock TTL cache answers "how old is this entry"; the paper's
deferred-maintenance machinery lets us answer the question that
actually matters: **has any data this result was computed from changed
since?** Each cached SELECT result remembers, per referenced base
table, the delta log's change count at the moment execution started
(see :meth:`repro.refresh.log.DeltaLog.change_count`). A lookup
recomputes the lag — the maximum number of changes any referenced
table has absorbed since the snapshot — and serves the entry only when

* ``lag == 0`` — nothing changed: a **fresh hit**, guaranteed equal to
  re-execution; or
* ``tolerance.admits(lag)`` — the session's ``SET REFRESH AGE``
  explicitly tolerates that much staleness: a **stale hit**, labeled
  ``"stale-hit"`` in the response and counted separately in metrics.

The cache key is the query's structural fingerprint
(:func:`repro.qgm.fingerprint.fingerprint` — stable across sessions,
processes, and persist/reload) combined with the session knobs that can
change the *answer*: the freshness tolerance and the
``use_summary_tables`` flag. Knobs that only change *resource limits*
(timeout, maxrows, executor parallelism) are deliberately not in the
key — equal queries under different limits produce equal rows (the
server re-checks ``MAXROWS`` against a hit's row count before serving
it, mirroring what governed execution would have done).

Invalidation is behavioral first: base-table writes advance change
counts, so fresh lookups simply miss — no scan, no lock on the write
path. Entries the counters have *permanently* killed (the key's
tolerance no longer admits the lag, and counters are monotonic) are
evicted on sight. :meth:`invalidate_table` does the same sweep eagerly
after a write so dead weight never waits for a lookup, and
:meth:`evict_tables` unconditionally drops entries for operations that
change answers without touching base tables — ``REFRESH SUMMARY
TABLE`` and ``DROP SUMMARY TABLE`` make previously-stale summaries
disappear from the plan, so results cached under a stale-tolerant key
may no longer match re-execution. Entries keyed at tolerance 0 are
exempt from that sweep: they were necessarily computed from fully
fresh summaries, so refreshing or dropping a summary cannot change
them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.table import Table
from repro.refresh.policy import RefreshAge


def cache_key(fingerprint_key: tuple, tolerance: RefreshAge,
              use_summary_tables: bool) -> tuple:
    """The full cache key for one (query, session-knobs) pair."""
    return (fingerprint_key, tolerance.key, use_summary_tables)


@dataclass
class CachedResult:
    """One cached SELECT result and its freshness snapshot."""

    table: Table
    base_tables: tuple[str, ...]
    #: per-base-table change counts at the moment execution *started*
    #: (conservative: a write landing mid-execution makes the entry look
    #: staler than it is, never fresher)
    snapshot: dict[str, int]
    tolerance: RefreshAge
    #: estimated resident size of ``table`` (Table.nbytes_estimate)
    nbytes: int = 0


class ResultCache:
    """Byte-weighted LRU semantic result cache over one delta log.

    Eviction is bounded two ways: ``max_entries`` caps the entry count,
    and ``max_bytes`` (when set) caps the *estimated* resident bytes —
    one entry holding a million-row result weighs what it costs, not 1.
    """

    def __init__(self, log, metrics=None, max_entries: int = 256,
                 max_cached_rows: int = 1_000_000,
                 max_bytes: int | None = None):
        self._log = log
        self._entries: OrderedDict[tuple, CachedResult] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        #: results wider than this are executed but never cached (one
        #: giant result must not evict the whole working set)
        self.max_cached_rows = max_cached_rows
        #: estimated-byte budget for all resident entries (None = only
        #: the entry-count bound applies)
        self.max_bytes = max_bytes
        self._bytes = 0
        if metrics is not None:
            self.hits = metrics.counter(
                "cache.hits", "Result-cache fresh hits (lag 0)"
            )
            self.stale_hits = metrics.counter(
                "cache.stale_hits",
                "Result-cache hits served stale under SET REFRESH AGE",
            )
            self.misses = metrics.counter(
                "cache.misses", "Result-cache misses (executed and cached)"
            )
            self.evictions = metrics.counter(
                "cache.evictions",
                "Entries dropped: LRU overflow or permanently dead",
            )
            self.invalidations = metrics.counter(
                "cache.invalidations",
                "Entries dropped by explicit eviction (writes/REFRESH/DROP)",
            )
            self.entries_gauge = metrics.gauge(
                "cache.entries", "Result-cache entries currently resident"
            )
            self.bytes_gauge = metrics.gauge(
                "cache.bytes", "Estimated bytes of resident cached results"
            )
        else:
            self.hits = self.stale_hits = self.misses = None
            self.evictions = self.invalidations = self.entries_gauge = None
            self.bytes_gauge = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Estimated bytes currently held by cached results."""
        return self._bytes

    def _count(self, counter, amount: int = 1) -> None:
        if counter is not None:
            counter.inc(amount)

    def _update_gauge(self) -> None:
        if self.entries_gauge is not None:
            self.entries_gauge.set(len(self._entries))
        if self.bytes_gauge is not None:
            self.bytes_gauge.set(self._bytes)

    def _remove(self, key: tuple) -> CachedResult:
        """Drop one entry and settle the byte ledger (lock held)."""
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        return entry

    def _lag(self, entry: CachedResult) -> int:
        return max(
            (
                self._log.change_count(table) - entry.snapshot.get(table, 0)
                for table in entry.base_tables
            ),
            default=0,
        )

    # ------------------------------------------------------------------
    def lookup(self, key: tuple) -> tuple[Table, str] | None:
        """``(table, "hit" | "stale-hit")`` when servable, else None.

        A permanently dead entry — its own tolerance no longer admits
        the lag, which monotonic counters can only grow — is evicted on
        the spot.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count(self.misses)
                return None
            lag = self._lag(entry)
            if lag == 0:
                self._entries.move_to_end(key)
                self._count(self.hits)
                return entry.table, "hit"
            if entry.tolerance.admits(lag):
                self._entries.move_to_end(key)
                self._count(self.stale_hits)
                return entry.table, "stale-hit"
            self._remove(key)
            self._count(self.evictions)
            self._count(self.misses)
            self._update_gauge()
            return None

    def store(self, key: tuple, table: Table, base_tables, snapshot: dict,
              tolerance: RefreshAge) -> bool:
        """Cache one executed result; returns False when it is too big
        to cache. ``snapshot`` must have been taken *before* execution
        started."""
        if len(table.rows) > self.max_cached_rows:
            return False
        nbytes = table.nbytes_estimate()
        if self.max_bytes is not None and nbytes > self.max_bytes:
            # One entry bigger than the whole budget would evict
            # everything and still not fit; execute-and-forget instead.
            return False
        entry = CachedResult(
            table,
            tuple(name.lower() for name in base_tables),
            dict(snapshot),
            tolerance,
            nbytes,
        )
        with self._lock:
            if key in self._entries:
                self._remove(key)
            self._entries[key] = entry
            self._bytes += nbytes
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                oldest, _ = next(iter(self._entries.items()))
                self._remove(oldest)
                self._count(self.evictions)
            self._update_gauge()
        return True

    def shed(self, target: int) -> int:
        """Memory-pressure callback: evict oldest-first until roughly
        ``target`` estimated bytes are freed (or the cache is empty).
        Returns the bytes actually freed."""
        freed = 0
        with self._lock:
            while self._entries and freed < target:
                oldest, _ = next(iter(self._entries.items()))
                freed += self._remove(oldest).nbytes
                self._count(self.evictions)
            self._update_gauge()
        return freed

    # ------------------------------------------------------------------
    def invalidate_table(self, table: str) -> int:
        """Eagerly drop entries a write to ``table`` has permanently
        killed (their own tolerance no longer admits the new lag);
        stale-tolerant entries stay warm and will serve labeled stale
        hits. Returns how many entries were dropped."""
        name = table.lower()
        with self._lock:
            dead = [
                key
                for key, entry in self._entries.items()
                if name in entry.base_tables
                and not entry.tolerance.admits(self._lag(entry))
            ]
            for key in dead:
                self._remove(key)
            self._count(self.invalidations, len(dead))
            self._update_gauge()
        return len(dead)

    def evict_tables(self, tables) -> int:
        """Unconditionally drop entries referencing any of ``tables``,
        except tolerance-0 entries (provably computed from fully fresh
        summaries, so summary-side changes cannot affect them). Used by
        ``REFRESH SUMMARY TABLE`` and ``DROP SUMMARY TABLE``. Returns
        how many entries were dropped."""
        wanted = {name.lower() for name in tables}
        with self._lock:
            dead = [
                key
                for key, entry in self._entries.items()
                if wanted & set(entry.base_tables)
                and entry.tolerance.max_pending != 0
            ]
            for key in dead:
                self._remove(key)
            self._count(self.invalidations, len(dead))
            self._update_gauge()
        return len(dead)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self._count(self.invalidations, dropped)
            self._update_gauge()
        return dropped
