"""Multi-client query server around one shared :class:`Database`.

The paper's engine is a library; this package puts a wire in front of
it. :mod:`repro.server.server` runs an asyncio TCP server speaking the
line-delimited JSON protocol defined in :mod:`repro.server.protocol`;
each connection gets a :class:`repro.server.session.Session` carrying
its private ``SET`` state, queries execute on a thread pool so the
event loop never blocks, and SELECT results flow through the semantic
result cache (:mod:`repro.server.result_cache`) keyed on QGM
fingerprints and invalidated by delta-log LSNs. See ``docs/SERVER.md``.
"""

from repro.server.client import QueryReply, ReproClient, ServerError
from repro.server.result_cache import ResultCache
from repro.server.server import QueryServer
from repro.server.session import Session

__all__ = [
    "QueryReply",
    "QueryServer",
    "ReproClient",
    "ResultCache",
    "ServerError",
    "Session",
]
