"""Per-connection session state: ``SET`` knobs that never leak.

Every server connection owns one :class:`Session`. ``SET`` statements
that tune *query behavior* — ``REFRESH AGE``, ``QUERY TIMEOUT``,
``QUERY MAXROWS``, ``QUERY MAXMEM``, ``EXECUTOR PARALLEL`` — are
intercepted here and
recorded on the session instead of mutating the shared
:class:`~repro.engine.database.Database`; at query time the recorded
values flow through ``Database.execute_statement``'s per-query override
parameters (see the :data:`~repro.governor.governor.UNSET` sentinel),
so two clients with different knobs never observe each other's limits.

Knobs start *inherited*: until a connection issues its own ``SET``, it
sees the database-level defaults (whatever the operator configured the
shared engine with). ``SET SLOW QUERY`` and ``SET TRACE SAMPLE`` are
deliberately **not** session-scoped — the slow-query log and the
request tracer are shared observability surfaces, so those statements
apply database/process-wide (the two documented exceptions).
"""

from __future__ import annotations

from repro.governor.governor import UNSET
from repro.refresh.policy import RefreshAge
from repro.sql.statements import (
    SetExecutorParallel,
    SetQueryMaxMem,
    SetQueryMaxRows,
    SetQueryTimeout,
    SetRefreshAge,
)

#: session-scoped SET statement types (everything else falls through to
#: ``Database.run_statement`` and applies globally)
SESSION_SET_TYPES = (
    SetRefreshAge,
    SetQueryTimeout,
    SetQueryMaxRows,
    SetQueryMaxMem,
    SetExecutorParallel,
)


class Session:
    """One connection's private ``SET`` state."""

    def __init__(self, client_id: str):
        self.client_id = client_id
        #: None ⇒ inherit the database's session-level ``refresh_age``
        self.refresh_age: RefreshAge | None = None
        # UNSET ⇒ inherit; None ⇒ explicitly OFF for this session
        self.timeout_ms = UNSET
        self.max_rows = UNSET
        self.max_mem = UNSET
        self.executor_parallel = UNSET
        #: queries answered for this connection (ping/metrics excluded)
        self.queries = 0

    # ------------------------------------------------------------------
    def effective_tolerance(self, db) -> RefreshAge:
        """The freshness tolerance this connection's queries run under."""
        return self.refresh_age if self.refresh_age is not None else db.refresh_age

    def effective_max_rows(self, db):
        """The row cap a cache hit must respect (``None`` ⇒ uncapped)."""
        if self.max_rows is UNSET:
            return db.governor.max_rows
        return self.max_rows

    # ------------------------------------------------------------------
    def apply_set(self, statement) -> str | None:
        """Record a session-scoped ``SET``; returns the status message,
        or ``None`` when the statement is not session-scoped (the caller
        should route it to the shared database instead)."""
        if isinstance(statement, SetRefreshAge):
            self.refresh_age = RefreshAge(statement.max_pending)
            return f"refresh age set to {self.refresh_age.describe()}"
        if isinstance(statement, SetQueryTimeout):
            self.timeout_ms = statement.timeout_ms
            if statement.timeout_ms is None:
                return "query timeout disabled"
            return f"query timeout set to {statement.timeout_ms:g} ms"
        if isinstance(statement, SetQueryMaxRows):
            self.max_rows = statement.max_rows
            if statement.max_rows is None:
                return "query maxrows disabled"
            return f"query maxrows set to {statement.max_rows}"
        if isinstance(statement, SetQueryMaxMem):
            self.max_mem = statement.max_mem
            if statement.max_mem is None:
                return "query maxmem disabled"
            return f"query maxmem set to {statement.max_mem} byte(s)"
        if isinstance(statement, SetExecutorParallel):
            self.executor_parallel = statement.workers
            if statement.workers is None:
                return "executor parallelism disabled"
            return f"executor parallelism set to {statement.workers} worker(s)"
        return None

    def describe(self) -> dict:
        """The session's knobs as a JSON-ready dict (``ping`` payload)."""

        def show(value):
            return "inherit" if value is UNSET else value

        return {
            "client_id": self.client_id,
            "refresh_age": (
                "inherit"
                if self.refresh_age is None
                else self.refresh_age.describe()
            ),
            "timeout_ms": show(self.timeout_ms),
            "max_rows": show(self.max_rows),
            "max_mem": show(self.max_mem),
            "executor_parallel": show(self.executor_parallel),
            "queries": self.queries,
        }
