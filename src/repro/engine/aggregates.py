"""Aggregate-function accumulators for the GROUP-BY operator.

SQL semantics: NULL inputs are ignored by every aggregate except
COUNT(*); over an empty input COUNT yields 0 and the others yield NULL
(an empty input only arises for the grand-total grouping set of an empty
table). DISTINCT variants deduplicate before accumulating.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.expr.nodes import AggCall


class Accumulator:
    """One aggregate computation over one group."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountStar(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> Any:
        return self.count


class Count(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> Any:
        return self.count


class Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class Avg(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value
        self.count += 1

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class Min(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class Max(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class Distinct(Accumulator):
    """Wraps another accumulator, feeding it each non-NULL value once."""

    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_PLAIN = {"count": Count, "sum": Sum, "avg": Avg, "min": Min, "max": Max}


def make_accumulator(call: AggCall) -> Accumulator:
    """Build a fresh accumulator for ``call``."""
    if call.func == "count" and call.arg is None:
        return CountStar()
    factory = _PLAIN.get(call.func)
    if factory is None:
        raise ExecutionError(f"unknown aggregate {call.func!r}")
    accumulator = factory()
    if call.distinct:
        return Distinct(accumulator)
    return accumulator
