"""Aggregate-function accumulators for the GROUP-BY operator.

SQL semantics: NULL inputs are ignored by every aggregate except
COUNT(*); over an empty input COUNT yields 0 and the others yield NULL
(an empty input only arises for the grand-total grouping set of an empty
table). DISTINCT variants deduplicate before accumulating.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.expr.nodes import AggCall


class Accumulator:
    """One aggregate computation over one group."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountStar(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> Any:
        return self.count


class Count(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> Any:
        return self.count


class Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class Avg(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value
        self.count += 1

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class Min(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class Max(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class Distinct(Accumulator):
    """Wraps another accumulator, feeding it each non-NULL value once."""

    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_PLAIN = {"count": Count, "sum": Sum, "avg": Avg, "min": Min, "max": Max}


def make_accumulator(call: AggCall) -> Accumulator:
    """Build a fresh accumulator for ``call``."""
    if call.func == "count" and call.arg is None:
        return CountStar()
    factory = _PLAIN.get(call.func)
    if factory is None:
        raise ExecutionError(f"unknown aggregate {call.func!r}")
    accumulator = factory()
    if call.distinct:
        return Distinct(accumulator)
    return accumulator


# ----------------------------------------------------------------------
# Vectorized kernels + partial-state algebra (the batch executor)
# ----------------------------------------------------------------------
# The columnar executor computes each aggregate with one tight loop over
# (group id, value) pairs instead of a method call per row, and — under
# morsel parallelism — carries *mergeable partial states* per group:
#
#   COUNT(*) / COUNT(x)  int            merged by addition
#   SUM(x)               value | None   merged by NULL-aware addition
#   AVG(x)               [sum, count]   merged component-wise
#   MIN(x) / MAX(x)      value | None   merged by comparison
#   DISTINCT variants    set of values  merged by union
#
# This is the same re-derivation algebra as the rewriter's rules (a)–(g)
# in repro/matching/derivation.py: a partition plays the role of a
# summary-table cell, and the merge re-derives the query aggregate from
# partial aggregates (AVG via SUM/COUNT, COUNT(*) via addition, ...).


def spec_kind(call: AggCall) -> tuple[str, bool]:
    """``(partial-state kind, distinct)`` for an aggregate call."""
    if call.func == "count" and call.arg is None:
        return "count*", bool(call.distinct)
    if call.func not in _PLAIN:
        raise ExecutionError(f"unknown aggregate {call.func!r}")
    return call.func, bool(call.distinct)


def empty_state(kind: str, distinct: bool):
    """The partial state of a group with no input rows (only the
    grand-total grouping set of an empty table produces one)."""
    if distinct:
        return set()
    if kind in ("count*", "count"):
        return 0
    if kind == "avg":
        return [None, 0]
    return None  # sum / min / max


def partial_states(kind: str, distinct: bool, gids, ngroups: int, values):
    """One partial state per group for one aggregate.

    ``gids`` assigns each input row a group id in ``range(ngroups)``;
    ``values`` is the aggregate's argument column aligned with ``gids``
    (``None`` for COUNT(*)). NULL inputs are ignored by every aggregate
    except COUNT(*), exactly like the row accumulators above."""
    if distinct:
        sets: list[set] = [set() for _ in range(ngroups)]
        if values is not None:
            for gid, value in zip(gids, values):
                if value is not None:
                    sets[gid].add(value)
        return sets
    if kind == "count*":
        counts = [0] * ngroups
        for gid in gids:
            counts[gid] += 1
        return counts
    if kind == "count":
        counts = [0] * ngroups
        for gid, value in zip(gids, values):
            if value is not None:
                counts[gid] += 1
        return counts
    if kind == "sum":
        totals: list[Any] = [None] * ngroups
        for gid, value in zip(gids, values):
            if value is not None:
                total = totals[gid]
                totals[gid] = value if total is None else total + value
        return totals
    if kind == "avg":
        totals = [None] * ngroups
        counts = [0] * ngroups
        for gid, value in zip(gids, values):
            if value is not None:
                total = totals[gid]
                totals[gid] = value if total is None else total + value
                counts[gid] += 1
        return [[total, count] for total, count in zip(totals, counts)]
    if kind == "min":
        best: list[Any] = [None] * ngroups
        for gid, value in zip(gids, values):
            if value is not None:
                current = best[gid]
                if current is None or value < current:
                    best[gid] = value
        return best
    if kind == "max":
        best = [None] * ngroups
        for gid, value in zip(gids, values):
            if value is not None:
                current = best[gid]
                if current is None or value > current:
                    best[gid] = value
        return best
    raise ExecutionError(f"unknown aggregate kind {kind!r}")


def merge_states(kind: str, distinct: bool, a, b):
    """Combine two partial states for one group (rules (a)–(g))."""
    if distinct:
        a |= b  # partials are owned by the merge; mutation is safe
        return a
    if kind in ("count*", "count"):
        return a + b
    if kind == "sum":
        if a is None:
            return b
        return a if b is None else a + b
    if kind == "avg":
        total_a, count_a = a
        total_b, count_b = b
        if total_a is None:
            total = total_b
        elif total_b is None:
            total = total_a
        else:
            total = total_a + total_b
        return [total, count_a + count_b]
    if kind == "min":
        if a is None:
            return b
        return a if b is None or a <= b else b
    if kind == "max":
        if a is None:
            return b
        return a if b is None or a >= b else b
    raise ExecutionError(f"unknown aggregate kind {kind!r}")


def finalize_state(kind: str, distinct: bool, state):
    """Partial state → the aggregate's SQL result value.

    DISTINCT sums iterate a *sorted* snapshot of the value set: set
    iteration order depends on insertion history, and the spill path
    round-trips states through an unordered on-disk encoding — sorting
    makes finalization a pure function of the set's contents, so spilled
    and in-memory execution produce bit-identical floats.
    """
    if distinct:
        if kind in ("count", "count*"):
            return len(state)
        if not state:
            return None
        if kind == "sum":
            return sum(sorted(state))
        if kind == "avg":
            return sum(sorted(state)) / len(state)
        if kind == "min":
            return min(state)
        return max(state)
    if kind == "avg":
        total, count = state
        return None if count == 0 else total / count
    return state
