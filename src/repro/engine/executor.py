"""Columnar batch executor: evaluates a QGM graph over in-memory tables.

This is the substrate the paper takes for granted (DB2's runtime). The
plan is derived directly from the graph:

* SELECT boxes filter each child with its single-quantifier predicates,
  then hash-join children along equality predicates (greedy connected
  order, building on the smaller side, cross join as a last resort),
  apply residual predicates, and project the output expressions.
* GROUP-BY boxes evaluate each grouping set (cuboid) independently and
  union the results with NULL padding, which is exactly the semantics of
  Section 5 / Figure 12.

QGM is semantics, not a plan — any smarter engine would return the same
tables; :mod:`repro.engine.reference` keeps the row-at-a-time oracle.

Execution model (docs/EXECUTOR.md):

* Relations flow between operators as **columns** — one plain value
  list per column — not as tuples.  Filtering applies each predicate
  conjunct as a compiled batch function (:mod:`repro.expr.vector`) over
  a *selection vector* of surviving row indices, then gathers once.
* Work is cut into **morsels**: selection vectors are processed in
  chunks of ``BATCH_ROWS`` rows (``_TICK_EVERY`` under a governor scope,
  preserving the historical tick cadence).  Each completed full morsel
  fires the ``executor.tick`` fault point and ticks the governor budget,
  so deadlines and cancellation land mid-operator.
* With ``SET EXECUTOR PARALLEL <n>`` a thread pool runs morsels
  concurrently (morsel-driven scheduling: workers pull whole morsels,
  not rows).  Scans/filters and hash-join probes fan out per morsel;
  cuboid group-bys fan out per partition and merge partial aggregate
  states with the same re-derivation algebra as
  :mod:`repro.matching.derivation` rules (a)–(g): SUM of partial SUMs,
  added COUNTs, MIN/MAX of partial MIN/MAXes, AVG carried as
  (SUM, COUNT), DISTINCT carried as a set union.  Governor ticks run
  *inside* the workers, so a deadline expiring mid-morsel raises
  ``QueryTimeout`` on the coordinating thread via the future.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from itertools import chain
from typing import Mapping

from repro.engine import aggregates as _agg
from repro.obs import spans as _spans
from repro.engine.table import Table, estimate_columns_nbytes
from repro.errors import (
    ExecutionError,
    MemoryBudgetExceeded,
    QueryResourceError,
)
from repro.expr.vector import compile_vector, conjuncts
from repro.governor import scope as governor_scope
from repro.resources import spill as _spill
from repro.testing import faults
from repro.expr.nodes import AggCall, BinaryOp, ColumnRef, Expr
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
)

#: default morsel size (rows per batch) for parallel execution; serial
#: ungoverned runs use one batch per operator (a full column pass is the
#: fastest shape for pure-Python list comprehensions)
BATCH_ROWS = 4096

#: rows between governor checkpoints in the executor's hot loops —
#: governed runs shrink the morsel to this size so the armed overhead is
#: one tick per batch and cancellation/deadlines land promptly mid-join
#: (the same cadence as the historical row-at-a-time executor)
_TICK_EVERY = 1024

#: per-row memory-charge constants for the two spill-capable operators.
#: Deliberately coarse (a dict slot + a small list + object headers on a
#: 64-bit CPython): the broker bounds order of magnitude, not malloc.
_JOIN_ENTRY_NBYTES = 96
_GROUP_ROW_NBYTES = 48
_STATE_NBYTES = 64

#: spilled operators never fan out beyond this many partition runs
_MAX_SPILL_PARTS = 64


class ExecutorStats:
    """Per-run batch/parallelism counters (EXPLAIN ANALYZE's
    ``-- executor --`` section and the ``executor_batch_*`` metrics)."""

    __slots__ = (
        "batches",
        "rows",
        "parallel_tasks",
        "workers",
        "batch_rows",
        "join_builds",
        "spills",
        "spill_runs",
        "spill_bytes",
    )

    def __init__(self, workers: int, batch_rows: int):
        self.batches = 0  # morsels processed across all operators
        self.rows = 0  # rows through batch operators (input side)
        self.parallel_tasks = 0  # morsels handed to worker threads
        self.workers = workers  # 0 ⇒ serial
        self.batch_rows = batch_rows
        #: one entry per hash join: which input became the build side
        self.join_builds: list[dict] = []
        self.spills = 0  # operators that degraded to spill-to-disk
        self.spill_runs = 0  # temp-file runs written across all spills
        self.spill_bytes = 0  # framed bytes written across all spills

    def describe_lines(self) -> list[str]:
        lines = [
            f"  batch rows {self.batch_rows}",
            f"  batches    {self.batches} ({self.rows} rows)",
        ]
        if self.workers:
            lines.append(
                f"  parallel   {self.workers} workers, "
                f"{self.parallel_tasks} morsel tasks"
            )
        else:
            lines.append("  parallel   off")
        for build in self.join_builds:
            lines.append(
                f"  hash join  build={build['build']} "
                f"({build['build_rows']} rows), probe "
                f"{build['probe_rows']} rows"
                + (" [spilled]" if build.get("spilled") else "")
            )
        if self.spills:
            lines.append(
                f"  spill      {self.spills} operator(s), "
                f"{self.spill_runs} run(s), {self.spill_bytes} byte(s)"
            )
        return lines


class _Rel:
    """An intermediate relation: one plain value list per column.

    ``borrowed`` marks columns aliased from a stored table (or its
    materialization cache); borrowed columns must be copied before they
    are adopted into a result table that a caller might mutate."""

    __slots__ = ("cols", "nrows", "borrowed")

    def __init__(self, cols: list[list], nrows: int, borrowed: bool):
        self.cols = cols
        self.nrows = nrows
        self.borrowed = borrowed


class _Ctx:
    """Per-run execution context: governor budget, worker pool, morsel
    size, and the stats the run accumulates."""

    __slots__ = ("budget", "pool", "workers", "stats", "chunk")

    def __init__(self, budget, pool, workers, stats, chunk):
        self.budget = budget
        self.pool = pool
        self.workers = workers
        self.stats = stats
        #: morsel size; ``None`` ⇒ single batch per operator
        self.chunk = chunk

    def tick(self, n: int) -> None:
        """Account one processed morsel of ``n`` rows.

        Mirrors the historical cadence exactly: the ``executor.tick``
        fault point and the budget tick fire only for *full* morsels
        (``n == chunk``), so a six-row governed query still never ticks.
        Runs on whichever thread processed the morsel — that is what
        makes deadlines/cancellation land mid-morsel under parallelism.
        """
        stats = self.stats
        stats.batches += 1
        stats.rows += n
        budget = self.budget
        if budget is not None and n == self.chunk:
            faults.fire("executor.tick")
            budget.tick(n, "execute")

    def map(self, task, chunks: list) -> list:
        """Run ``task`` over ``chunks``, on the pool when it helps.

        Results come back in chunk order.  A worker exception (deadline,
        cancellation, fault injection) cancels the not-yet-started
        morsels and re-raises on the coordinating thread."""
        if self.pool is not None and len(chunks) > 1:
            self.stats.parallel_tasks += len(chunks)
            futures = [self.pool.submit(task, chunk) for chunk in chunks]
            results = []
            try:
                for future in futures:
                    results.append(future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            return results
        return [task(chunk) for chunk in chunks]

    def partitions(self, nrows: int) -> list[range]:
        """Row ranges for partition-parallel group-by (one per worker,
        never smaller than a morsel); a single range when serial."""
        floor = self.chunk or BATCH_ROWS
        if self.pool is not None and self.workers > 1 and nrows >= 2 * floor:
            size = max(floor, -(-nrows // self.workers))
            return _split(range(nrows), size)
        return [range(nrows)]


def _split(sel, size):
    """Cut a selection (range or index list) into morsels of ``size``."""
    n = len(sel)
    if size is None or n <= size:
        return [sel]
    return [sel[k : k + size] for k in range(0, n, size)]


def _make_resolver(cols, index_of):
    def resolve(ref, _cols=cols, _index=index_of):
        return _cols[_index[ref]]

    return resolve


class Executor:
    """Evaluates query graphs against a table store (name → Table,
    lower-case keys).

    ``metrics`` is an optional :class:`repro.obs.metrics.MetricsRegistry`
    that receives per-run counters (``executor_runs``, ``executor_boxes``,
    ``executor_batch_*``) and an output-cardinality histogram
    (``executor_rows``).  ``parallel`` enables morsel-driven parallelism
    with that many workers; ``pool`` supplies a long-lived
    ``ThreadPoolExecutor`` (the Database owns one per session) — without
    it a transient pool is spun up per run.  ``batch_rows`` overrides the
    morsel size (benchmarks sweep it); the default is ``BATCH_ROWS``
    when chunking is needed, or one whole-column batch per operator."""

    def __init__(
        self,
        tables: Mapping[str, Table],
        metrics=None,
        parallel: int | None = None,
        pool=None,
        batch_rows: int | None = None,
    ):
        self._tables = tables
        self._metrics = metrics
        self._parallel = parallel or 0
        self._pool = pool
        self._batch_rows = batch_rows
        #: populated by :meth:`run`
        self.stats: ExecutorStats | None = None

    def run(self, graph: QueryGraph) -> Table:
        """Execute ``graph`` and return the result (ORDER BY applied).

        When a governor scope is active on this thread (see
        :mod:`repro.governor.scope`), every morsel boundary ticks the
        budget — deadline expiry raises ``QueryTimeout``, cancellation
        ``QueryCancelled`` — and every materialized intermediate/result
        table is checked against the ``SET QUERY MAXROWS`` high-water
        cap.  Ungoverned serial runs take whole-column batches with no
        instrumentation in the hot loops.
        """
        run_pc = time.perf_counter()
        budget = governor_scope.current()
        workers = self._parallel
        pool = self._pool if workers else None
        owns_pool = False
        if workers and pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-exec"
            )
            owns_pool = True
        if self._batch_rows is not None:
            chunk = self._batch_rows
        elif budget is not None:
            chunk = _TICK_EVERY
        elif pool is not None:
            chunk = BATCH_ROWS
        else:
            chunk = None  # one batch per operator
        stats = ExecutorStats(workers if pool is not None else 0, chunk or BATCH_ROWS)
        self.stats = stats
        ctx = _Ctx(budget, pool, workers, stats, chunk)
        try:
            memo: dict[int, Table] = {}
            result = self._evaluate(graph.root, memo, ctx)
            if budget is not None:
                budget.check_rows(len(result), "result rows")
            if graph.order_by:
                result = Table.from_columns(
                    result.columns,
                    [list(c) for c in result.columns_data()],
                    len(result),
                )
                result.sort_by(graph.order_by)
            if graph.limit is not None and len(result) > graph.limit:
                result = Table.from_columns(
                    result.columns,
                    [c[: graph.limit] for c in result.columns_data()],
                    graph.limit,
                )
        finally:
            if owns_pool:
                pool.shutdown(wait=True)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("executor_runs", "graphs executed").inc()
            metrics.counter("executor_boxes", "boxes evaluated").inc(len(memo))
            metrics.histogram("executor_rows", "result cardinality").observe(
                float(len(result))
            )
            metrics.counter(
                "executor_batch_count", "column batches (morsels) processed"
            ).inc(stats.batches)
            metrics.counter(
                "executor_batch_rows", "rows through batch operators"
            ).inc(stats.rows)
            if stats.parallel_tasks:
                metrics.counter(
                    "executor_batch_parallel_tasks",
                    "morsels executed on worker threads",
                ).inc(stats.parallel_tasks)
            if stats.spills:
                metrics.counter(
                    "executor_spill_count",
                    "operators that degraded to spill-to-disk",
                ).inc(stats.spills)
                metrics.counter(
                    "executor_spill_runs", "spill runs written"
                ).inc(stats.spill_runs)
                metrics.counter(
                    "executor_spill_bytes", "framed spill bytes written"
                ).inc(stats.spill_bytes)
        if _spans.TRACER is not None:
            _spans.record(
                "executor.run", run_pc, boxes=len(memo),
                batches=stats.batches, rows=len(result),
                workers=stats.workers,
            )
        return result

    # ------------------------------------------------------------------
    def _evaluate(self, box: QGMBox, memo: dict[int, Table], ctx: _Ctx) -> Table:
        cached = memo.get(id(box))
        if cached is not None:
            return cached
        if isinstance(box, BaseTableBox):
            result = self._scan(box)
        elif isinstance(box, SelectBox):
            result = self._evaluate_select(box, memo, ctx)
        elif isinstance(box, GroupByBox):
            result = self._evaluate_groupby(box, memo, ctx)
        elif isinstance(box, UnionAllBox):
            result = self._evaluate_union(box, memo, ctx)
        else:
            raise ExecutionError(f"cannot execute box {box!r}")
        memo[id(box)] = result
        return result

    def _scan(self, box: BaseTableBox) -> Table:
        table = self._tables.get(box.table_name.lower())
        if table is None:
            raise ExecutionError(f"no data loaded for table {box.table_name!r}")
        return table

    @staticmethod
    def _rel_of(table: Table) -> _Rel:
        # columns_data() aliases the stores' value lists (or their
        # materialization caches) — mark borrowed so nothing downstream
        # adopts them into a mutable result without copying.
        return _Rel(table.columns_data(), len(table), True)

    @staticmethod
    def _to_table(names, rel: _Rel) -> Table:
        if rel.borrowed:
            return Table.from_columns(names, [list(c) for c in rel.cols], rel.nrows)
        return Table.from_columns(names, rel.cols, rel.nrows)

    def _evaluate_union(self, box: UnionAllBox, memo, ctx: _Ctx) -> Table:
        cols: list[list] = [[] for _ in box.output_names]
        total = 0
        budget = ctx.budget
        for quantifier in box.quantifiers():
            child = self._evaluate(quantifier.box, memo, ctx)
            for out, data in zip(cols, child.columns_data()):
                out.extend(data)
            total += len(child)
            if budget is not None:
                budget.check_rows(total, "unioned rows")
        return Table.from_columns(box.output_names, cols, total)

    # ------------------------------------------------------------------
    # SELECT boxes
    # ------------------------------------------------------------------
    def _evaluate_select(self, box: SelectBox, memo, ctx: _Ctx) -> Table:
        quantifiers = box.quantifiers()
        child_tables = {
            q.name: self._evaluate(q.box, memo, ctx) for q in quantifiers
        }

        local, equijoins, residual = _classify_predicates(box)

        # Filter each child early with its single-quantifier predicates.
        child_rels: dict[str, _Rel] = {}
        for quantifier in quantifiers:
            table = child_tables[quantifier.name]
            rel = self._rel_of(table)
            predicates = local.get(quantifier.name, [])
            if predicates:
                index = {
                    ColumnRef(quantifier.name, name): i
                    for i, name in enumerate(table.columns)
                }
                rel = self._filter_rel(rel, predicates, index, ctx)
            child_rels[quantifier.name] = rel

        joined, index_of = self._join_children(
            quantifiers, child_tables, child_rels, equijoins, ctx
        )
        leftover = [pair.predicate for pair in equijoins if not pair.used] + residual
        if leftover:
            joined = self._filter_rel(joined, leftover, index_of, ctx)

        out = self._project_rel(joined, [q.expr for q in box.outputs], index_of, ctx)
        if box.distinct:
            out = self._distinct_rel(out)
        if ctx.budget is not None:
            ctx.budget.check_rows(out.nrows)
        return self._to_table(box.output_names, out)

    def _filter_rel(self, rel: _Rel, predicates, index_of, ctx: _Ctx) -> _Rel:
        """Apply predicates as sequential selection passes.

        Each top-level AND conjunct shrinks the selection before the
        next one runs — the row interpreter's short-circuit order, which
        is what keeps guarded expressions (``y <> 0 AND x / y > 1``)
        from evaluating where they shouldn't."""
        fns = [
            compile_vector(conjunct)
            for predicate in predicates
            for conjunct in conjuncts(predicate)
        ]
        if not fns:
            return rel
        cols = rel.cols
        resolve = _make_resolver(cols, index_of)
        sel = range(rel.nrows)
        for fn in fns:
            if not len(sel):
                break

            def task(chunk, _fn=fn, _resolve=resolve, _ctx=ctx):
                values = _fn(_resolve, chunk)
                kept = [i for i, v in zip(chunk, values) if v is True]
                _ctx.tick(len(chunk))
                return kept

            parts = ctx.map(task, _split(sel, ctx.chunk))
            sel = parts[0] if len(parts) == 1 else list(chain.from_iterable(parts))
        if type(sel) is range and len(sel) == rel.nrows:
            return rel
        return _Rel([[c[i] for i in sel] for c in cols], len(sel), False)

    def _join_children(
        self, quantifiers, child_tables, child_rels, equijoins, ctx: _Ctx
    ) -> tuple[_Rel, dict[ColumnRef, int]]:
        """Greedy hash-join of the children; returns the joined relation
        plus a QNC index map."""
        if not quantifiers:
            raise ExecutionError("SELECT box with no children")

        remaining = list(quantifiers)
        links: dict[str, set[str]] = {}
        for join in equijoins:
            links.setdefault(join.left.qualifier, set()).add(join.right.qualifier)
            links.setdefault(join.right.qualifier, set()).add(join.left.qualifier)

        def pop_next(joined_names: set[str]):
            if not joined_names:
                # Start with the child most constrained by join edges.
                best = max(remaining, key=lambda q: len(links.get(q.name, ())))
                remaining.remove(best)
                return best
            for candidate in remaining:
                if links.get(candidate.name, set()) & joined_names:
                    remaining.remove(candidate)
                    return candidate
            return remaining.pop(0)

        index_of: dict[ColumnRef, int] = {}
        joined: _Rel | None = None
        joined_names: set[str] = set()
        width = 0
        while remaining:
            quantifier = pop_next(joined_names)
            table = child_tables[quantifier.name]
            rel = child_rels[quantifier.name]
            offset = width
            for i, name in enumerate(table.columns):
                index_of[ColumnRef(quantifier.name, name)] = offset + i
            if joined is None:
                joined = rel
                joined_names = {quantifier.name}
                width = len(table.columns)
                continue
            # Hash keys: every unused equi-join predicate connecting the
            # new child to the already-joined side.
            keys: list[tuple[int, int]] = []  # (joined index, new-child index)
            for join in equijoins:
                if join.used:
                    continue
                sides = {
                    join.left.qualifier: join.left,
                    join.right.qualifier: join.right,
                }
                if quantifier.name not in sides:
                    continue
                other = set(sides) - {quantifier.name}
                if not other or next(iter(other)) not in joined_names:
                    continue
                new_ref = sides[quantifier.name]
                old_ref = sides[next(iter(other))]
                keys.append((index_of[old_ref], table.column_index(new_ref.name)))
                join.used = True
            joined = self._hash_join(joined, rel, keys, ctx)
            joined_names.add(quantifier.name)
            width += len(table.columns)
        return joined, index_of

    def _hash_join(
        self, left: _Rel, right: _Rel, keys: list[tuple[int, int]], ctx: _Ctx
    ) -> _Rel:
        if not keys:
            return self._cross_join(left, right, ctx)
        # Build on the smaller side by *actual* cardinality — the greedy
        # join order optimizes connectivity, not size, so either input
        # may be the small one.
        build_left = left.nrows <= right.nrows
        if build_left:
            build, probe = left, right
            build_key_cols = [left.cols[i] for i, _ in keys]
            probe_key_cols = [right.cols[j] for _, j in keys]
        else:
            build, probe = right, left
            build_key_cols = [right.cols[j] for _, j in keys]
            probe_key_cols = [left.cols[i] for i, _ in keys]
        ctx.stats.join_builds.append(
            {
                "build": "left" if build_left else "right",
                "build_rows": build.nrows,
                "probe_rows": probe.nrows,
            }
        )
        budget = ctx.budget
        reservation = budget.reservation if budget is not None else None
        charged = 0
        if reservation is not None:
            estimate = (
                estimate_columns_nbytes(build_key_cols)
                + build.nrows * _JOIN_ENTRY_NBYTES
            )
            try:
                reservation.charge(estimate)
                charged = estimate
            except MemoryBudgetExceeded:
                ctx.stats.join_builds[-1]["spilled"] = True
                build_take, probe_take = self._hash_join_spilled(
                    build, probe, build_key_cols, probe_key_cols,
                    ctx, estimate,
                )
                return self._gather_join(
                    left, right, build_left, build_take, probe_take
                )
        try:
            buckets = self._build_buckets(build_key_cols, build.nrows, ctx)
            single = len(probe_key_cols) == 1
            out_count = [0]  # shared high-water (approximate under parallel)

            def probe_task(chunk):
                build_take: list[int] = []
                probe_take: list[int] = []
                extend_b = build_take.extend
                append_p = probe_take.append
                if single:
                    col = probe_key_cols[0]
                    get = buckets.get
                    for i in chunk:
                        bucket = get(col[i])
                        if bucket is None:
                            continue
                        extend_b(bucket)
                        if len(bucket) == 1:
                            append_p(i)
                        else:
                            probe_take.extend([i] * len(bucket))
                else:
                    get = buckets.get
                    for i in chunk:
                        bucket = get(tuple(col[i] for col in probe_key_cols))
                        if bucket is None:
                            continue
                        extend_b(bucket)
                        probe_take.extend([i] * len(bucket))
                ctx.tick(len(chunk))
                if budget is not None:
                    # MAXROWS high-water *while* the output grows, so a
                    # row explosion is caught mid-join rather than after.
                    out_count[0] += len(build_take)
                    budget.check_rows(out_count[0], "joined rows")
                return build_take, probe_take

            parts = ctx.map(probe_task, _split(range(probe.nrows), ctx.chunk))
            if len(parts) == 1:
                build_take, probe_take = parts[0]
            else:
                build_take = list(chain.from_iterable(p[0] for p in parts))
                probe_take = list(chain.from_iterable(p[1] for p in parts))
        finally:
            if charged:
                reservation.release(charged)
        return self._gather_join(left, right, build_left, build_take, probe_take)

    @staticmethod
    def _gather_join(
        left: _Rel, right: _Rel, build_left: bool, build_take, probe_take
    ) -> _Rel:
        if build_left:
            left_take, right_take = build_take, probe_take
        else:
            left_take, right_take = probe_take, build_take
        cols = [[c[i] for i in left_take] for c in left.cols]
        cols += [[c[i] for i in right_take] for c in right.cols]
        return _Rel(cols, len(left_take), False)

    def _hash_join_spilled(
        self, build, probe, build_key_cols, probe_key_cols, ctx: _Ctx,
        estimate: int,
    ) -> tuple[list[int], list[int]]:
        """Grace-style spilled hash join, bit-identical to the in-memory
        path.

        The build side's ``(key, row index)`` pairs are partitioned by
        key hash into CRC-framed temp-file runs; each partition is then
        rebuilt as a small bucket table and probed with that partition's
        probe rows. Every key lives in exactly one partition and each
        run preserves ascending build order, so sorting the collected
        ``(probe row, build row)`` pairs reproduces the in-memory output
        order exactly: probe-major, bucket insertion order within.

        A run that cannot be written (spill disk full, or the armed
        ``executor.spill`` fault) is the bottom of the resource ladder:
        the query fails with a typed ``QueryResourceError``.
        """
        budget = ctx.budget
        reservation = budget.reservation
        headroom = reservation.headroom() or 0
        if headroom > 0:
            nparts = min(_MAX_SPILL_PARTS, max(2, -(-estimate // headroom)))
        else:
            nparts = 8
        single = len(build_key_cols) == 1

        def partition_ids(key_cols, nrows: int) -> list[int]:
            """Partition id per row; -1 for NULL keys (never equi-join)."""
            pids = [-1] * nrows
            for chunk in _split(range(nrows), ctx.chunk):
                if single:
                    col = key_cols[0]
                    for i in chunk:
                        value = col[i]
                        if value is not None:
                            pids[i] = hash(value) % nparts
                else:
                    for i in chunk:
                        key = tuple(col[i] for col in key_cols)
                        if None not in key:
                            pids[i] = hash(key) % nparts
                ctx.tick(len(chunk))
            return pids

        build_pids = partition_ids(build_key_cols, build.nrows)
        runs = []
        pairs: list[tuple[int, int]] = []
        try:
            for p in range(nparts):
                if single:
                    col = build_key_cols[0]
                    records = (
                        [col[i], i]
                        for i in range(build.nrows)
                        if build_pids[i] == p
                    )
                else:
                    records = (
                        [tuple(col[i] for col in build_key_cols), i]
                        for i in range(build.nrows)
                        if build_pids[i] == p
                    )
                try:
                    runs.append(_spill.write_run(records, label="join"))
                except (OSError, faults.InjectedFault) as error:
                    raise QueryResourceError(
                        "hash join exceeded its memory budget and the "
                        f"spill path failed: {error}"
                    ) from error
            self._note_spill(ctx, runs)
            probe_pids = partition_ids(probe_key_cols, probe.nrows)
            probe_by_part: list[list[int]] = [[] for _ in range(nparts)]
            for i, pid in enumerate(probe_pids):
                if pid >= 0:
                    probe_by_part[pid].append(i)
            probe_single = len(probe_key_cols) == 1
            for p, run in enumerate(runs):
                buckets: dict = {}
                get = buckets.get
                for key, build_i in run.read():
                    bucket = get(key)
                    if bucket is None:
                        buckets[key] = [build_i]
                    else:
                        bucket.append(build_i)
                probe_rows = probe_by_part[p]
                if probe_single:
                    col = probe_key_cols[0]
                    for i in probe_rows:
                        bucket = get(col[i])
                        if bucket is not None:
                            pairs.extend((i, b) for b in bucket)
                else:
                    for i in probe_rows:
                        bucket = get(
                            tuple(col[i] for col in probe_key_cols)
                        )
                        if bucket is not None:
                            pairs.extend((i, b) for b in bucket)
                ctx.tick(len(probe_rows))
                if budget is not None:
                    budget.check_rows(len(pairs), "joined rows")
        finally:
            for run in runs:
                run.delete()
        # Bucket lists hold ascending build rows, so a plain sort equals
        # the in-memory probe-major emit order.
        pairs.sort()
        return [b for _, b in pairs], [i for i, _ in pairs]

    @staticmethod
    def _note_spill(ctx: _Ctx, runs) -> None:
        nbytes = sum(run.nbytes for run in runs)
        reservation = ctx.budget.reservation
        reservation.note_spill(len(runs), nbytes)
        stats = ctx.stats
        stats.spills += 1
        stats.spill_runs += len(runs)
        stats.spill_bytes += nbytes

    def _build_buckets(self, key_cols, nrows: int, ctx: _Ctx) -> dict:
        """Hash-side build: key → list of build-row indices (NULL keys
        never equi-join and are skipped)."""
        buckets: dict = {}
        single = len(key_cols) == 1
        for chunk in _split(range(nrows), ctx.chunk):
            if single:
                col = key_cols[0]
                get = buckets.get
                for i in chunk:
                    value = col[i]
                    if value is None:
                        continue
                    bucket = get(value)
                    if bucket is None:
                        buckets[value] = [i]
                    else:
                        bucket.append(i)
            else:
                get = buckets.get
                for i in chunk:
                    key = tuple(col[i] for col in key_cols)
                    if any(value is None for value in key):
                        continue
                    bucket = get(key)
                    if bucket is None:
                        buckets[key] = [i]
                    else:
                        bucket.append(i)
            ctx.tick(len(chunk))
        return buckets

    def _cross_join(self, left: _Rel, right: _Rel, ctx: _Ctx) -> _Rel:
        ln, rn = left.nrows, right.nrows
        ncols = len(left.cols) + len(right.cols)
        if ln == 0 or rn == 0:
            return _Rel([[] for _ in range(ncols)], 0, False)
        left_take: list[int] = []
        right_take: list[int] = []
        right_range = range(rn)
        budget = ctx.budget
        if budget is None:
            for i in range(ln):
                left_take.extend([i] * rn)
                right_take.extend(right_range)
        else:
            threshold = ctx.chunk or BATCH_ROWS
            pending = 0
            for i in range(ln):
                left_take.extend([i] * rn)
                right_take.extend(right_range)
                pending += rn
                if pending >= threshold:
                    faults.fire("executor.tick")
                    budget.tick(pending, "execute")
                    budget.check_rows(len(left_take), "joined rows")
                    pending = 0
        ctx.stats.batches += 1
        ctx.stats.rows += len(left_take)
        cols = [[c[i] for i in left_take] for c in left.cols]
        cols += [[c[i] for i in right_take] for c in right.cols]
        return _Rel(cols, len(left_take), False)

    def _project_rel(self, rel: _Rel, exprs: list[Expr], index_of, ctx: _Ctx) -> _Rel:
        cols = rel.cols
        nrows = rel.nrows
        resolve = _make_resolver(cols, index_of)
        out_cols: list[list] = []
        aliased_ids: set[int] = set()
        borrowed = False
        for expr in exprs:
            if isinstance(expr, ColumnRef):
                column = cols[index_of[expr]]
                if id(column) in aliased_ids:
                    # Same source column projected twice: the stores of
                    # one table must not share a value list.
                    column = list(column)
                else:
                    aliased_ids.add(id(column))
                    borrowed = borrowed or rel.borrowed
                out_cols.append(column)
                continue
            fn = compile_vector(expr)
            chunks = _split(range(nrows), ctx.chunk)
            if len(chunks) == 1:
                column = fn(resolve, chunks[0])
                ctx.tick(nrows)
            else:

                def task(chunk, _fn=fn, _resolve=resolve, _ctx=ctx):
                    values = _fn(_resolve, chunk)
                    _ctx.tick(len(chunk))
                    return values

                column = list(chain.from_iterable(ctx.map(task, chunks)))
            out_cols.append(column)
        return _Rel(out_cols, nrows, borrowed)

    @staticmethod
    def _distinct_rel(rel: _Rel) -> _Rel:
        if rel.nrows == 0 or not rel.cols:
            return rel
        seen: set = set()
        add = seen.add
        keep: list[int] = []
        append = keep.append
        position = 0
        for row in zip(*rel.cols):
            if row not in seen:
                add(row)
                append(position)
            position += 1
        if len(keep) == rel.nrows:
            return rel
        return _Rel(
            [[c[i] for i in keep] for c in rel.cols], len(keep), False
        )

    # ------------------------------------------------------------------
    # GROUP-BY boxes
    # ------------------------------------------------------------------
    def _evaluate_groupby(self, box: GroupByBox, memo, ctx: _Ctx) -> Table:
        child = self._evaluate(box.child_quantifier.box, memo, ctx)
        rel = self._rel_of(child)
        quantifier_name = box.child_quantifier.name

        def child_index(ref: ColumnRef) -> int:
            if ref.qualifier != quantifier_name:
                raise ExecutionError(f"GROUP-BY box references foreign {ref!r}")
            return child.column_index(ref.name)

        # Column index feeding each grouping output, by output name.
        grouping_source: dict[str, int] = {}
        # (name, call, arg index, partial kind, distinct)
        specs: list[tuple] = []
        for qcl in box.outputs:
            if isinstance(qcl.expr, AggCall):
                call = qcl.expr
                arg_index = child_index(call.arg) if call.arg is not None else None
                kind, distinct = _agg.spec_kind(call)
                specs.append((qcl.name, call, arg_index, kind, distinct))
            elif isinstance(qcl.expr, ColumnRef):
                grouping_source[qcl.name] = child_index(qcl.expr)
            else:
                raise ExecutionError(
                    f"GROUP-BY output {qcl.name!r} is not a simple column "
                    "or aggregate"
                )

        cuboids = [
            self._evaluate_cuboid(box, rel, grouping_set, grouping_source, specs, ctx)
            for grouping_set in box.grouping_sets
        ]
        if len(cuboids) == 1:
            out = cuboids[0]
            total = out.nrows
        else:
            cols: list[list] = [[] for _ in box.output_names]
            total = 0
            for cuboid in cuboids:
                for out_col, col in zip(cols, cuboid.cols):
                    out_col.extend(col)
                total += cuboid.nrows
            out = _Rel(cols, total, False)
        if ctx.budget is not None:
            ctx.budget.check_rows(total, "grouped rows")
        return self._to_table(box.output_names, out)

    def _evaluate_cuboid(
        self, box, rel: _Rel, grouping_set, grouping_source, specs, ctx: _Ctx
    ) -> _Rel:
        key_indexes = [grouping_source[name] for name in grouping_set]
        key_cols = [rel.cols[i] for i in key_indexes]

        budget = ctx.budget
        reservation = budget.reservation if budget is not None else None
        charged = 0
        spilled = False
        if reservation is not None:
            estimate = (
                estimate_columns_nbytes(key_cols)
                + rel.nrows
                * (_GROUP_ROW_NBYTES + _STATE_NBYTES * len(specs))
            )
            try:
                reservation.charge(estimate)
                charged = estimate
            except MemoryBudgetExceeded:
                spilled = True
        try:
            if spilled:
                order, states = self._cuboid_spilled(
                    key_cols, specs, rel, ctx
                )
            else:
                ranges = ctx.partitions(rel.nrows)

                def task(rng):
                    return self._cuboid_partial(key_cols, specs, rel, rng, ctx)

                parts = ctx.map(task, ranges)
                order, states = _merge_partials(parts, specs)
        finally:
            if charged:
                reservation.release(charged)
        if not order and not grouping_set:
            # Grand total over an empty input still yields one row.
            order = [()]
            states = [
                [_agg.empty_state(kind, distinct)]
                for (_, _, _, kind, distinct) in specs
            ]

        ngroups = len(order)
        single = len(key_indexes) == 1
        aggregate_values = {
            name: [_agg.finalize_state(kind, distinct, s) for s in spec_states]
            for (name, _, _, kind, distinct), spec_states in zip(specs, states)
        }
        in_set = set(grouping_set)
        key_position = {name: i for i, name in enumerate(grouping_set)}
        out_cols: list[list] = []
        for qcl in box.outputs:
            if qcl.name in aggregate_values:
                out_cols.append(aggregate_values[qcl.name])
            elif qcl.name in in_set:
                position = key_position[qcl.name]
                if single:
                    out_cols.append(list(order))
                else:
                    out_cols.append([key[position] for key in order])
            else:
                out_cols.append([None] * ngroups)  # grouped-out column
        return _Rel(out_cols, ngroups, False)

    def _cuboid_partial(self, key_cols, specs, rel: _Rel, rng, ctx: _Ctx):
        """One partition's group-by pass: first-seen key order, a group
        id per row, then one tight kernel loop per aggregate.  Returns
        ``(keys in order, per-spec partial states)`` for the merge."""
        group_of: dict = {}
        order: list = []
        gids: list[int] = []
        gid_append = gids.append
        nkeys = len(key_cols)
        for chunk in _split(rng, ctx.chunk):
            if nkeys == 1:
                col = key_cols[0]
                get = group_of.get
                for i in chunk:
                    value = col[i]
                    gid = get(value)
                    if gid is None:
                        gid = group_of[value] = len(order)
                        order.append(value)
                    gid_append(gid)
            elif nkeys == 0:
                if not order and len(chunk):
                    order.append(())
                gids.extend([0] * len(chunk))
            else:
                gathered = [[col[i] for i in chunk] for col in key_cols]
                get = group_of.get
                for key in zip(*gathered):
                    gid = get(key)
                    if gid is None:
                        gid = group_of[key] = len(order)
                        order.append(key)
                    gid_append(gid)
            ctx.tick(len(chunk))
        ngroups = len(order)
        states = []
        arg_cache: dict[int, list] = {}
        budget = ctx.budget
        full = type(rng) is range and len(rng) == rel.nrows
        for _, _, arg_index, kind, distinct in specs:
            if arg_index is None:
                values = None
            else:
                values = arg_cache.get(arg_index)
                if values is None:
                    col = rel.cols[arg_index]
                    values = col if full else [col[i] for i in rng]
                    arg_cache[arg_index] = values
            states.append(
                _agg.partial_states(kind, distinct, gids, ngroups, values)
            )
            if budget is not None:
                budget.checkpoint("execute")
        return order, states

    def _cuboid_spilled(self, key_cols, specs, rel: _Rel, ctx: _Ctx):
        """Spill-to-disk GROUP BY for one cuboid, bit-identical to the
        in-memory path.

        Rows are partitioned by group-key hash; each partition's rows
        (ascending, so every group accumulates its inputs in original
        order) are aggregated into partial states and written to a
        CRC-framed run as ``[first row index, key, states]`` records.
        The runs are then merged with the re-derivation algebra — rules
        (a)–(g) via :func:`repro.engine.aggregates.merge_states` — and
        the groups sorted by first-seen row index, which reproduces the
        serial pass's group order. Bit-identity hinges on every key's
        state coming from ONE sequential pass over all of its rows in
        ascending order: a key's rows never span partitions, and a
        partition is never subdivided, so ``merge_states`` only ever
        sees a key that appears in multiple runs — which cannot happen
        here — making the merge a pure concatenation in practice.
        (Splitting a partition into sub-segments and merging their
        partial states would re-associate float sums — ``fold(a)+
        fold(b)`` instead of ``fold(a+b)`` — and break bit-identity
        for whichever keys straddle the split, a function of the
        per-process hash seed.) ``nparts`` is sized so one partition's
        pass fits the reservation's headroom; under extreme pressure
        the ``_MAX_SPILL_PARTS`` cap wins and the pass may transiently
        exceed it, trading strictness for exactness.
        """
        budget = ctx.budget
        reservation = budget.reservation
        nspecs = len(specs)
        per_row = _GROUP_ROW_NBYTES + _STATE_NBYTES * nspecs
        headroom = reservation.headroom() or 0
        if headroom > 0:
            nparts = min(
                _MAX_SPILL_PARTS, max(2, -(-(rel.nrows * per_row) // headroom))
            )
        else:
            nparts = 8
        nkeys = len(key_cols)
        pids = [0] * rel.nrows
        for chunk in _split(range(rel.nrows), ctx.chunk):
            if nkeys == 1:
                col = key_cols[0]
                for i in chunk:
                    pids[i] = hash(col[i]) % nparts
            elif nkeys > 1:
                for i in chunk:
                    pids[i] = hash(tuple(col[i] for col in key_cols)) % nparts
            ctx.tick(len(chunk))
        rows_by_part: list[list[int]] = [[] for _ in range(nparts)]
        for i, pid in enumerate(pids):
            rows_by_part[pid].append(i)
        runs = []
        group_of: dict = {}
        order: list = []
        firsts: list[int] = []
        merged: list[list] = [[] for _ in specs]
        try:
            for rows in rows_by_part:
                if not rows:
                    continue
                part_order, part_firsts, part_states = self._cuboid_pass(
                    key_cols, specs, rel, rows, ctx
                )
                records = (
                    [
                        part_firsts[g],
                        key,
                        [part_states[s][g] for s in range(nspecs)],
                    ]
                    for g, key in enumerate(part_order)
                )
                try:
                    runs.append(_spill.write_run(records, label="group"))
                except (OSError, faults.InjectedFault) as error:
                    raise QueryResourceError(
                        "GROUP BY exceeded its memory budget and the "
                        f"spill path failed: {error}"
                    ) from error
            self._note_spill(ctx, runs)
            for run in runs:
                for first, key, states in run.read():
                    gid = group_of.get(key)
                    if gid is None:
                        group_of[key] = len(order)
                        order.append(key)
                        firsts.append(first)
                        for s in range(nspecs):
                            merged[s].append(states[s])
                    else:
                        if first < firsts[gid]:
                            firsts[gid] = first
                        for s, (_, _, _, kind, distinct) in enumerate(specs):
                            merged[s][gid] = _agg.merge_states(
                                kind, distinct, merged[s][gid], states[s]
                            )
                budget.check_rows(len(order), "grouped rows")
        finally:
            for run in runs:
                run.delete()
        permutation = sorted(range(len(order)), key=firsts.__getitem__)
        return (
            [order[g] for g in permutation],
            [[column[g] for g in permutation] for column in merged],
        )

    def _cuboid_pass(self, key_cols, specs, rel: _Rel, rows, ctx: _Ctx):
        """Like :meth:`_cuboid_partial` over an explicit row-index list,
        additionally reporting each group's first (global) row index so
        the spill merge can restore the serial first-seen order."""
        group_of: dict = {}
        order: list = []
        firsts: list[int] = []
        gids: list[int] = []
        gid_append = gids.append
        nkeys = len(key_cols)
        for chunk in _split(rows, ctx.chunk):
            if nkeys == 1:
                col = key_cols[0]
                get = group_of.get
                for i in chunk:
                    value = col[i]
                    gid = get(value)
                    if gid is None:
                        gid = group_of[value] = len(order)
                        order.append(value)
                        firsts.append(i)
                    gid_append(gid)
            elif nkeys == 0:
                if len(chunk) and not order:
                    order.append(())
                    firsts.append(chunk[0])
                gids.extend([0] * len(chunk))
            else:
                get = group_of.get
                for i in chunk:
                    key = tuple(col[i] for col in key_cols)
                    gid = get(key)
                    if gid is None:
                        gid = group_of[key] = len(order)
                        order.append(key)
                        firsts.append(i)
                    gid_append(gid)
            ctx.tick(len(chunk))
        ngroups = len(order)
        states = []
        arg_cache: dict[int, list] = {}
        budget = ctx.budget
        for _, _, arg_index, kind, distinct in specs:
            if arg_index is None:
                values = None
            else:
                values = arg_cache.get(arg_index)
                if values is None:
                    col = rel.cols[arg_index]
                    values = [col[i] for i in rows]
                    arg_cache[arg_index] = values
            states.append(
                _agg.partial_states(kind, distinct, gids, ngroups, values)
            )
            if budget is not None:
                budget.checkpoint("execute")
        return order, firsts, states


def _merge_partials(parts, specs):
    """Merge per-partition group-by states in partition order.

    First-seen key order across ordered partitions reproduces the serial
    pass's group order; states combine with the re-derivation algebra
    (see :func:`repro.engine.aggregates.merge_states`)."""
    if len(parts) == 1:
        return parts[0]
    group_of: dict = {}
    order: list = []
    merged: list[list] = [[] for _ in specs]
    for part_order, part_states in parts:
        for local_gid, key in enumerate(part_order):
            gid = group_of.get(key)
            if gid is None:
                group_of[key] = len(order)
                order.append(key)
                for s in range(len(specs)):
                    merged[s].append(part_states[s][local_gid])
            else:
                for s, (_, _, _, kind, distinct) in enumerate(specs):
                    merged[s][gid] = _agg.merge_states(
                        kind, distinct, merged[s][gid], part_states[s][local_gid]
                    )
    return order, merged


# ----------------------------------------------------------------------
# SELECT-box helpers
# ----------------------------------------------------------------------
class _EquiJoin:
    """One cross-quantifier equality predicate, trackable as used."""

    def __init__(self, predicate: Expr, left: ColumnRef, right: ColumnRef):
        self.predicate = predicate
        self.left = left
        self.right = right
        self.used = False


def _classify_predicates(
    box: SelectBox,
) -> tuple[dict[str, list[Expr]], list[_EquiJoin], list[Expr]]:
    local: dict[str, list[Expr]] = {}
    equijoins: list[_EquiJoin] = []
    residual: list[Expr] = []
    for predicate in box.predicates:
        qualifiers = {ref.qualifier for ref in predicate.column_refs()}
        if len(qualifiers) == 1:
            local.setdefault(next(iter(qualifiers)), []).append(predicate)
            continue
        if (
            isinstance(predicate, BinaryOp)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
            and predicate.left.qualifier != predicate.right.qualifier
        ):
            equijoins.append(_EquiJoin(predicate, predicate.left, predicate.right))
            continue
        residual.append(predicate)
    return local, equijoins, residual
