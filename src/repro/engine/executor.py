"""Executor: evaluates a QGM graph over in-memory tables.

This is the substrate the paper takes for granted (DB2's runtime). The
plan is derived directly from the graph:

* SELECT boxes filter each child with its single-quantifier predicates,
  then hash-join children along equality predicates (greedy connected
  order, cross join as a last resort), apply residual predicates, and
  project the output expressions.
* GROUP-BY boxes evaluate each grouping set (cuboid) independently and
  union the results with NULL padding, which is exactly the semantics of
  Section 5 / Figure 12.

QGM is semantics, not a plan — any smarter engine would return the same
tables; this one is simple enough to trust as ground truth.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.engine.aggregates import make_accumulator
from repro.engine.table import Row, Table
from repro.errors import ExecutionError
from repro.expr.evaluator import evaluate
from repro.governor import scope as governor_scope
from repro.testing import faults
from repro.expr.nodes import AggCall, BinaryOp, ColumnRef, Expr
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
)


class Executor:
    """Evaluates query graphs against a table store (name → Table,
    lower-case keys).

    ``metrics`` is an optional :class:`repro.obs.metrics.MetricsRegistry`
    that receives per-run counters (``executor_runs``, ``executor_boxes``)
    and an output-cardinality histogram (``executor_rows``)."""

    def __init__(self, tables: Mapping[str, Table], metrics=None):
        self._tables = tables
        self._metrics = metrics

    def run(self, graph: QueryGraph) -> Table:
        """Execute ``graph`` and return the result (ORDER BY applied).

        When a governor scope is active on this thread (see
        :mod:`repro.governor.scope`), the join/scan/group loops tick the
        budget every ``_TICK_EVERY`` rows — deadline expiry raises
        ``QueryTimeout``, cancellation ``QueryCancelled`` — and every
        materialized intermediate/result table is checked against the
        ``SET QUERY MAXROWS`` high-water cap. Ungoverned runs take the
        original loops untouched.
        """
        budget = governor_scope.current()
        memo: dict[int, Table] = {}
        result = self._evaluate(graph.root, memo, budget)
        if budget is not None:
            budget.check_rows(len(result.rows), "result rows")
        if graph.order_by:
            result = Table(result.columns, result.rows)
            result.sort_by(graph.order_by)
        if graph.limit is not None and len(result.rows) > graph.limit:
            result = Table(result.columns, result.rows[: graph.limit])
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("executor_runs", "graphs executed").inc()
            metrics.counter("executor_boxes", "boxes evaluated").inc(len(memo))
            metrics.histogram("executor_rows", "result cardinality").observe(
                float(len(result.rows))
            )
        return result

    # ------------------------------------------------------------------
    def _evaluate(self, box: QGMBox, memo: dict[int, Table], budget=None) -> Table:
        cached = memo.get(id(box))
        if cached is not None:
            return cached
        if isinstance(box, BaseTableBox):
            result = self._scan(box)
        elif isinstance(box, SelectBox):
            result = self._evaluate_select(box, memo, budget)
        elif isinstance(box, GroupByBox):
            result = self._evaluate_groupby(box, memo, budget)
        elif isinstance(box, UnionAllBox):
            rows: list[Row] = []
            for quantifier in box.quantifiers():
                rows.extend(self._evaluate(quantifier.box, memo, budget).rows)
                if budget is not None:
                    budget.check_rows(len(rows), "unioned rows")
            result = Table(box.output_names, rows)
        else:
            raise ExecutionError(f"cannot execute box {box!r}")
        memo[id(box)] = result
        return result

    def _scan(self, box: BaseTableBox) -> Table:
        table = self._tables.get(box.table_name.lower())
        if table is None:
            raise ExecutionError(f"no data loaded for table {box.table_name!r}")
        return table

    # ------------------------------------------------------------------
    # SELECT boxes
    # ------------------------------------------------------------------
    def _evaluate_select(
        self, box: SelectBox, memo: dict[int, Table], budget=None
    ) -> Table:
        quantifiers = box.quantifiers()
        child_tables = {
            q.name: self._evaluate(q.box, memo, budget) for q in quantifiers
        }

        local, equijoins, residual = _classify_predicates(box)

        # Filter each child early with its single-quantifier predicates.
        child_rows: dict[str, list[Row]] = {}
        for quantifier in quantifiers:
            table = child_tables[quantifier.name]
            rows = table.rows
            predicates = local.get(quantifier.name, [])
            if predicates:
                index = {
                    ColumnRef(quantifier.name, name): i
                    for i, name in enumerate(table.columns)
                }
                rows = _filter_rows(rows, predicates, index, budget)
            child_rows[quantifier.name] = rows

        joined_rows, index_of = _join_children(
            quantifiers, child_tables, child_rows, equijoins, budget
        )
        leftover = [pair.predicate for pair in equijoins if not pair.used] + residual
        if leftover:
            joined_rows = _filter_rows(joined_rows, leftover, index_of, budget)

        out_rows = _project_rows(
            joined_rows, [q.expr for q in box.outputs], index_of, budget
        )
        if box.distinct:
            out_rows = _dedupe(out_rows)
        if budget is not None:
            budget.check_rows(len(out_rows))
        return Table(box.output_names, out_rows)

    # ------------------------------------------------------------------
    # GROUP-BY boxes
    # ------------------------------------------------------------------
    def _evaluate_groupby(
        self, box: GroupByBox, memo: dict[int, Table], budget=None
    ) -> Table:
        child = self._evaluate(box.child_quantifier.box, memo, budget)
        quantifier_name = box.child_quantifier.name

        def child_index(ref: ColumnRef) -> int:
            if ref.qualifier != quantifier_name:
                raise ExecutionError(f"GROUP-BY box references foreign {ref!r}")
            return child.column_index(ref.name)

        # Column index feeding each grouping output, by output name.
        grouping_source: dict[str, int] = {}
        aggregate_specs: list[tuple[str, AggCall, int | None]] = []
        for qcl in box.outputs:
            if isinstance(qcl.expr, AggCall):
                arg_index = (
                    child_index(qcl.expr.arg) if qcl.expr.arg is not None else None
                )
                aggregate_specs.append((qcl.name, qcl.expr, arg_index))
            elif isinstance(qcl.expr, ColumnRef):
                grouping_source[qcl.name] = child_index(qcl.expr)
            else:
                raise ExecutionError(
                    f"GROUP-BY output {qcl.name!r} is not a simple column "
                    "or aggregate"
                )

        out_rows: list[Row] = []
        for grouping_set in box.grouping_sets:
            out_rows.extend(
                self._evaluate_cuboid(
                    box, child.rows, grouping_set, grouping_source,
                    aggregate_specs, budget,
                )
            )
        if budget is not None:
            budget.check_rows(len(out_rows), "grouped rows")
        return Table(box.output_names, out_rows)

    def _evaluate_cuboid(
        self,
        box: GroupByBox,
        rows: list[Row],
        grouping_set: tuple[str, ...],
        grouping_source: dict[str, int],
        aggregate_specs: list[tuple[str, AggCall, int | None]],
        budget=None,
    ) -> list[Row]:
        key_indexes = [grouping_source[name] for name in grouping_set]
        groups: dict[tuple, list] = {}
        for row in _ticked(rows, budget):
            key = tuple(row[i] for i in key_indexes)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(call) for _, call, _ in aggregate_specs]
                groups[key] = accumulators
            for accumulator, (_, _, arg_index) in zip(accumulators, aggregate_specs):
                accumulator.add(row[arg_index] if arg_index is not None else True)
        if not groups and not grouping_set:
            # Grand total over an empty input still yields one row.
            groups[()] = [make_accumulator(call) for _, call, _ in aggregate_specs]

        in_set = set(grouping_set)
        key_position = {name: i for i, name in enumerate(grouping_set)}
        out_rows = []
        for key, accumulators in groups.items():
            aggregate_values = {
                name: acc.result()
                for (name, _, _), acc in zip(aggregate_specs, accumulators)
            }
            row = []
            for qcl in box.outputs:
                if qcl.name in aggregate_values:
                    row.append(aggregate_values[qcl.name])
                elif qcl.name in in_set:
                    row.append(key[key_position[qcl.name]])
                else:
                    row.append(None)  # grouped-out column of this cuboid
            out_rows.append(tuple(row))
        return out_rows


# ----------------------------------------------------------------------
# Governor instrumentation
# ----------------------------------------------------------------------
#: rows between governor checkpoints in the executor's hot loops —
#: coarse enough that the disarmed paths stay untouched and the armed
#: overhead is one tick per batch, fine enough that cancellation and
#: deadlines land promptly even mid-join
_TICK_EVERY = 1024


def _ticked(rows, budget):
    """Iterate ``rows``, ticking ``budget`` every ``_TICK_EVERY`` rows.

    Returns ``rows`` untouched when ungoverned, so callers keep plain
    list iteration on the default path. The ``executor.tick`` fault
    point fires at every batch boundary — note it therefore only fires
    while a governor scope is active.
    """
    if budget is None:
        return rows
    return _ticking_iter(rows, budget)


def _ticking_iter(rows, budget):
    count = 0
    for row in rows:
        yield row
        count += 1
        if count % _TICK_EVERY == 0:
            faults.fire("executor.tick")
            budget.tick(_TICK_EVERY, "execute")


# ----------------------------------------------------------------------
# SELECT-box helpers
# ----------------------------------------------------------------------
class _EquiJoin:
    """One cross-quantifier equality predicate, trackable as used."""

    def __init__(self, predicate: Expr, left: ColumnRef, right: ColumnRef):
        self.predicate = predicate
        self.left = left
        self.right = right
        self.used = False


def _classify_predicates(
    box: SelectBox,
) -> tuple[dict[str, list[Expr]], list[_EquiJoin], list[Expr]]:
    local: dict[str, list[Expr]] = {}
    equijoins: list[_EquiJoin] = []
    residual: list[Expr] = []
    for predicate in box.predicates:
        qualifiers = {ref.qualifier for ref in predicate.column_refs()}
        if len(qualifiers) == 1:
            local.setdefault(next(iter(qualifiers)), []).append(predicate)
            continue
        if (
            isinstance(predicate, BinaryOp)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
            and predicate.left.qualifier != predicate.right.qualifier
        ):
            equijoins.append(_EquiJoin(predicate, predicate.left, predicate.right))
            continue
        residual.append(predicate)
    return local, equijoins, residual


def _join_children(
    quantifiers,
    child_tables,
    child_rows,
    equijoins: list[_EquiJoin],
    budget=None,
) -> tuple[list[Row], dict[ColumnRef, int]]:
    """Greedy hash-join of the children; returns rows + a QNC index map."""
    if not quantifiers:
        raise ExecutionError("SELECT box with no children")

    remaining = list(quantifiers)
    links: dict[str, set[str]] = {}
    for join in equijoins:
        links.setdefault(join.left.qualifier, set()).add(join.right.qualifier)
        links.setdefault(join.right.qualifier, set()).add(join.left.qualifier)

    def pop_next(joined_names: set[str]):
        if not joined_names:
            # Start with the child most constrained by join edges.
            best = max(remaining, key=lambda q: len(links.get(q.name, ())))
            remaining.remove(best)
            return best
        for candidate in remaining:
            if links.get(candidate.name, set()) & joined_names:
                remaining.remove(candidate)
                return candidate
        candidate = remaining[0]
        return remaining.pop(0)

    index_of: dict[ColumnRef, int] = {}
    joined: list[Row] = []
    joined_names: set[str] = set()
    width = 0
    while remaining:
        quantifier = pop_next(joined_names)
        table = child_tables[quantifier.name]
        rows = child_rows[quantifier.name]
        offset = width
        for i, name in enumerate(table.columns):
            index_of[ColumnRef(quantifier.name, name)] = offset + i
        if not joined_names:
            joined = rows
            joined_names = {quantifier.name}
            width = len(table.columns)
            continue
        # Hash keys: every unused equi-join predicate connecting the new
        # child to the already-joined side.
        keys: list[tuple[int, int]] = []  # (joined index, new-child index)
        for join in equijoins:
            if join.used:
                continue
            sides = {join.left.qualifier: join.left, join.right.qualifier: join.right}
            if quantifier.name not in sides:
                continue
            other = set(sides) - {quantifier.name}
            if not other or next(iter(other)) not in joined_names:
                continue
            new_ref = sides[quantifier.name]
            old_ref = sides[next(iter(other))]
            keys.append(
                (index_of[old_ref], table.column_index(new_ref.name))
            )
            join.used = True
        joined = _hash_join(joined, rows, keys, budget)
        joined_names.add(quantifier.name)
        width += len(table.columns)
    return joined, index_of


def _hash_join(
    left_rows: list[Row],
    right_rows: list[Row],
    keys: list[tuple[int, int]],
    budget=None,
) -> list[Row]:
    if not keys:
        if budget is None:
            return [l + r for l in left_rows for r in right_rows]
        return _governed_output(
            (l + r for l in left_rows for r in right_rows), budget
        )
    right_key_indexes = [right_index for _, right_index in keys]
    left_key_indexes = [left_index for left_index, _ in keys]
    buckets: dict[tuple, list[Row]] = {}
    for row in right_rows:
        key = tuple(row[i] for i in right_key_indexes)
        if any(value is None for value in key):
            continue  # NULL never equi-joins
        buckets.setdefault(key, []).append(row)
    if budget is not None:
        return _governed_output(
            (
                row + match
                for row in left_rows
                for match in buckets.get(
                    tuple(row[i] for i in left_key_indexes), ()
                )
            ),
            budget,
        )
    joined = []
    for row in left_rows:
        key = tuple(row[i] for i in left_key_indexes)
        for match in buckets.get(key, ()):  # missing key -> no rows
            joined.append(row + match)
    return joined


def _governed_output(rows, budget) -> list[Row]:
    """Materialize join output under the governor: tick per batch and
    apply the MAXROWS high-water check *while* the output grows, so a
    row explosion is caught mid-join rather than after it finishes."""
    out: list[Row] = []
    for row in rows:
        out.append(row)
        if len(out) % _TICK_EVERY == 0:
            faults.fire("executor.tick")
            budget.tick(_TICK_EVERY, "execute")
            budget.check_rows(len(out), "joined rows")
    return out


def _filter_rows(
    rows: list[Row],
    predicates: list[Expr],
    index_of: dict[ColumnRef, int],
    budget=None,
) -> list[Row]:
    cell: list[Row] = [()]

    def resolve(ref: ColumnRef) -> Any:
        return cell[0][index_of[ref]]

    kept = []
    for row in _ticked(rows, budget):
        cell[0] = row
        if all(evaluate(predicate, resolve) is True for predicate in predicates):
            kept.append(row)
    return kept


def _project_rows(
    rows: list[Row],
    exprs: list[Expr],
    index_of: dict[ColumnRef, int],
    budget=None,
) -> list[Row]:
    cell: list[Row] = [()]

    def resolve(ref: ColumnRef) -> Any:
        return cell[0][index_of[ref]]

    # Fast path for plain column projections.
    plans: list[Any] = []
    for expr in exprs:
        if isinstance(expr, ColumnRef):
            plans.append(index_of[expr])
        else:
            plans.append(expr)
    out = []
    for row in _ticked(rows, budget):
        cell[0] = row
        out.append(
            tuple(
                row[plan] if isinstance(plan, int) else evaluate(plan, resolve)
                for plan in plans
            )
        )
    return out


def _dedupe(rows: list[Row]) -> list[Row]:
    seen: set = set()
    unique = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique
