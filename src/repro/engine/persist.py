"""Saving and loading databases.

A database directory contains ``catalog.json`` (schemas, keys, RI
constraints, summary-table definitions) and one ``<table>.jsonl`` per
table (one JSON array per row; dates as ISO strings, re-typed on load
from the declared column types). Summary tables are saved with their
materialized rows *and* their defining SQL, so a reload restores the
exact snapshot without re-running the definitions.

Deferred-refresh state persists too: each summary entry records its
refresh mode and staleness (pending delta-batch count, last-refresh
LSN), and the staged delta log itself is written to ``deltas.jsonl`` —
so a reloaded database can finish its deferred maintenance exactly where
the saved one left off (``drain_refresh()`` applies it). Databases saved
by older versions load with every summary REFRESH IMMEDIATE and an empty
log, and older loaders simply ignore the extra manifest keys and file.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Any

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import ReproError

FORMAT_VERSION = 1


def save_database(database: Database, path: str | Path) -> Path:
    """Write ``database`` to a directory; returns the directory path."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    summaries = {
        summary.name: summary for summary in database.summary_tables.values()
    }
    manifest: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "tables": [],
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_columns": list(fk.child_columns),
                "parent_table": fk.parent_table,
                "parent_columns": list(fk.parent_columns),
            }
            for fk in database.catalog.foreign_keys
        ],
        "summary_tables": [
            {
                "name": summary.name,
                "sql": summary.sql,
                "refresh_mode": summary.refresh.mode,
                "pending_deltas": summary.refresh.pending_deltas,
                "last_refresh_lsn": summary.refresh.last_refresh_lsn,
            }
            for summary in summaries.values()
        ],
        "refresh_lsn": database.delta_log.lsn,
    }
    for key, schema in database.catalog.tables.items():
        manifest["tables"].append(_schema_to_json(schema))
        _write_rows(root / f"{schema.name}.jsonl", database.tables[key])
    _write_delta_log(root / "deltas.jsonl", database.delta_log)
    (root / "catalog.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_database(path: str | Path) -> Database:
    """Reconstruct a database saved by :func:`save_database`."""
    root = Path(path)
    manifest_path = root / "catalog.json"
    if not manifest_path.exists():
        raise ReproError(f"{root} does not contain a saved database")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported save format {manifest.get('format_version')!r}"
        )

    catalog = Catalog()
    schemas: dict[str, TableSchema] = {}
    for entry in manifest["tables"]:
        schema = _schema_from_json(entry)
        catalog.add_table(schema)
        schemas[schema.name] = schema
    for entry in manifest["foreign_keys"]:
        catalog.add_foreign_key(
            ForeignKeyConstraint(
                entry["child_table"],
                tuple(entry["child_columns"]),
                entry["parent_table"],
                tuple(entry["parent_columns"]),
            )
        )

    database = Database(catalog)
    for name, schema in schemas.items():
        rows = _read_rows(root / f"{name}.jsonl", schema)
        database.tables[name.lower()] = Table(schema.column_names, rows)

    # Re-register summary tables around the already-loaded snapshots.
    from repro.asts.definition import SummaryTable
    from repro.refresh.policy import RefreshState

    for entry in manifest["summary_tables"]:
        name = entry["name"]
        schema = schemas[name]
        graph = database.bind(entry["sql"], label="A")
        table = database.tables[name.lower()]
        summary = SummaryTable(
            name=name,
            sql=entry["sql"],
            graph=graph,
            schema=schema,
            table=table,
            refresh=RefreshState(
                mode=entry.get("refresh_mode", "immediate"),
                pending_deltas=entry.get("pending_deltas", 0),
                last_refresh_lsn=entry.get("last_refresh_lsn", 0),
            ),
        )
        summary.stats["rows"] = float(len(table))
        database._register_summary(summary)
    _read_delta_log(
        root / "deltas.jsonl",
        database,
        manifest.get("refresh_lsn", 0),
        schemas,
    )
    return database


# ----------------------------------------------------------------------
def _schema_to_json(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.dtype.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "keys": [
            {"columns": list(k.columns), "primary": k.is_primary}
            for k in schema.keys
        ],
    }


def _schema_from_json(entry: dict[str, Any]) -> TableSchema:
    columns = [
        Column(c["name"], DataType(c["type"]), c["nullable"])
        for c in entry["columns"]
    ]
    keys = [UniqueKey(tuple(k["columns"]), k["primary"]) for k in entry["keys"]]
    return TableSchema(entry["name"], columns, keys)


def _write_delta_log(path: Path, log) -> None:
    batches = log.batches()
    if not batches:
        if path.exists():
            path.unlink()
        return
    with path.open("w") as handle:
        for batch in batches:
            handle.write(
                json.dumps(
                    {
                        "seq": batch.seq,
                        "table": batch.table,
                        "sign": batch.sign,
                        "rows": [
                            [_encode(value) for value in row]
                            for row in batch.rows
                        ],
                    }
                )
            )
            handle.write("\n")


def _read_delta_log(
    path: Path, database: Database, lsn: int, schemas: dict[str, TableSchema]
) -> None:
    from repro.refresh.log import DeltaBatch

    by_key = {schema.name.lower(): schema for schema in schemas.values()}
    batches = []
    if path.exists():
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                schema = by_key.get(entry["table"])
                if schema is None:
                    raise ReproError(
                        f"delta batch references unknown table {entry['table']!r}"
                    )
                decoders = [_decoder(column.dtype) for column in schema.columns]
                rows = tuple(
                    tuple(
                        None if value is None else decode(value)
                        for decode, value in zip(decoders, raw)
                    )
                    for raw in entry["rows"]
                )
                batches.append(
                    DeltaBatch(entry["seq"], entry["table"], entry["sign"], rows)
                )
    database.delta_log.restore(lsn, batches)


def _write_rows(path: Path, table: Table) -> None:
    with path.open("w") as handle:
        for row in table.rows:
            handle.write(json.dumps([_encode(value) for value in row]))
            handle.write("\n")


def _encode(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _read_rows(path: Path, schema: TableSchema) -> list[tuple]:
    if not path.exists():
        return []
    decoders = [_decoder(column.dtype) for column in schema.columns]
    rows: list[tuple] = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if len(raw) != len(decoders):
                raise ReproError(
                    f"row width mismatch in {path.name}: {raw!r}"
                )
            rows.append(
                tuple(
                    None if value is None else decode(value)
                    for decode, value in zip(decoders, raw)
                )
            )
    return rows


def _decoder(dtype: DataType):
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat
    if dtype is DataType.FLOAT:
        return float
    if dtype is DataType.INTEGER:
        return int
    return lambda value: value
