"""Saving and loading databases, crash-safely.

A database directory contains ``catalog.json`` (schemas, keys, RI
constraints, summary-table definitions) and one ``<table>.jsonl`` per
table (one JSON array per row; dates as ISO strings, re-typed on load
from the declared column types). Summary tables are saved with their
materialized rows *and* their defining SQL, so a reload restores the
exact snapshot without re-running the definitions. Deferred-refresh
state persists too: each summary entry records its refresh mode,
staleness (pending delta-batch count, last-refresh LSN), and quarantine
flag, and the staged delta log itself is written to ``deltas.jsonl``.

Save-format compatibility rule
------------------------------
``FORMAT_VERSION`` is 2; :func:`load_database` loads **both** v2 and v1
directories — v1 exactly as the original loader did (raw JSON lines, no
checksums), so databases saved by older versions keep loading unchanged.
New writers always produce v2. The v2 additions:

* **Atomic writes** — every file is written to a ``*.tmp`` sibling,
  fsynced, and atomically renamed into place; ``catalog.json`` is
  written *last*, making its rename the commit point. A crash mid-save
  leaves the previous save's manifest pointing at a consistent previous
  generation (data files are each old-complete or new-complete; the
  manifest's per-file checksums detect the mix, see below).
* **Per-line CRC32 framing** — each row/delta line is prefixed with the
  CRC32 of its payload (``crc32hex SP json``). A corrupt or partial
  *trailing* line (a torn tail) is truncated and reported as a recovery
  anomaly, not a fatal error; corruption *inside* the file still raises,
  with file name and line number.
* **Per-file checksums in the manifest** — used on load to detect a
  data file from a different save generation than the manifest; the
  mismatch marks the table *suspect* for :func:`verify_database`.

:func:`verify_database` is the startup recovery pass: it cross-checks
every summary's ``last_refresh_lsn``/``pending_deltas`` against the
delta log and rebuilds (full recompute) summaries whose snapshots are
suspect — quarantining any that cannot be rebuilt — and returns a
:class:`RecoveryReport`. Base tables are never dropped or rewritten by
recovery; a summary is either consistent or quarantined, never silently
wrong.
"""

from __future__ import annotations

import datetime
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKeyConstraint,
    TableSchema,
    UniqueKey,
)
from repro.catalog.types import DataType
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import ReproError
from repro.testing import faults

FORMAT_VERSION = 2
#: versions this loader understands
SUPPORTED_VERSIONS = (1, 2)


# ----------------------------------------------------------------------
# Atomic, checksummed writing
# ----------------------------------------------------------------------
def _frame(payload: str) -> str:
    """One v2 line: the payload's CRC32 (8 hex chars), a space, the payload."""
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + fsync + atomic rename,
    so ``path`` is always either its old complete contents or its new
    complete contents — never a torn mix."""
    tmp = path.with_name(path.name + ".tmp")
    faults.fire("persist.write")
    with tmp.open("w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    faults.fire("persist.rename")
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Make the rename durable (best effort — not all platforms allow
    opening a directory for fsync)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def save_database(database: Database, path: str | Path) -> Path:
    """Write ``database`` to a directory; returns the directory path.

    Data files are written (atomically) first, the manifest last — the
    manifest rename is the commit point for the whole save.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    for stale in root.glob("*.tmp"):  # leftovers from a crashed save
        stale.unlink()
    summaries = {
        summary.name: summary for summary in database.summary_tables.values()
    }
    checksums: dict[str, dict[str, int]] = {}
    manifest: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "tables": [],
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_columns": list(fk.child_columns),
                "parent_table": fk.parent_table,
                "parent_columns": list(fk.parent_columns),
            }
            for fk in database.catalog.foreign_keys
        ],
        "summary_tables": [
            {
                "name": summary.name,
                "sql": summary.sql,
                "refresh_mode": summary.refresh.mode,
                "pending_deltas": summary.refresh.pending_deltas,
                "last_refresh_lsn": summary.refresh.last_refresh_lsn,
                "quarantined": summary.refresh.quarantined,
                "quarantine_reason": summary.refresh.quarantine_reason,
            }
            for summary in summaries.values()
        ],
        "refresh_lsn": database.delta_log.lsn,
        "checksums": checksums,
    }
    for key, schema in database.catalog.tables.items():
        manifest["tables"].append(_schema_to_json(schema))
        filename = f"{schema.name}.jsonl"
        text = _rows_text(database.tables[key])
        _atomic_write(root / filename, text)
        checksums[filename] = {
            "crc": zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF,
            "rows": len(database.tables[key]),
        }
    delta_text = _delta_log_text(database.delta_log)
    delta_path = root / "deltas.jsonl"
    if delta_text:
        _atomic_write(delta_path, delta_text)
        checksums["deltas.jsonl"] = {
            "crc": zlib.crc32(delta_text.encode("utf-8")) & 0xFFFFFFFF,
            "rows": len(database.delta_log),
        }
    elif delta_path.exists():
        delta_path.unlink()
    _atomic_write(root / "catalog.json", json.dumps(manifest, indent=2))
    return root


def _rows_text(table: Table) -> str:
    lines = [
        _frame(json.dumps([_encode(value) for value in row]))
        for row in table.rows
    ]
    return "".join(line + "\n" for line in lines)


def _delta_log_text(log) -> str:
    lines = [
        _frame(
            json.dumps(
                {
                    "seq": batch.seq,
                    "table": batch.table,
                    "sign": batch.sign,
                    "rows": [
                        [_encode(value) for value in row] for row in batch.rows
                    ],
                }
            )
        )
        for batch in log.batches()
    ]
    return "".join(line + "\n" for line in lines)


# ----------------------------------------------------------------------
# Loading (v1 and v2)
# ----------------------------------------------------------------------
def load_database(path: str | Path) -> Database:
    """Reconstruct a database saved by :func:`save_database`.

    Loads v2 (checksummed) and v1 (legacy raw-JSON-lines) directories.
    Torn tails and generation mismatches are recorded as anomalies on
    the returned database (``database._load_anomalies``) for
    :func:`verify_database` to repair; genuine corruption — a bad line
    in the middle of a file, an unreadable manifest, a missing snapshot
    — raises :class:`ReproError` with file name and line number context.
    """
    root = Path(path)
    manifest_path = root / "catalog.json"
    if not manifest_path.exists():
        raise ReproError(f"{root} does not contain a saved database")
    manifest = _load_manifest(manifest_path)
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ReproError(f"unsupported save format {version!r}")
    framed = version >= 2
    checksums = manifest.get("checksums", {}) if framed else {}
    anomalies: list[str] = []
    suspects: set[str] = set()

    catalog = Catalog()
    schemas: dict[str, TableSchema] = {}
    for entry in manifest["tables"]:
        try:
            schema = _schema_from_json(entry)
        except (KeyError, ValueError) as error:
            raise ReproError(
                f"catalog.json: malformed table entry "
                f"{entry.get('name', '?')!r}: {error!r}"
            ) from error
        catalog.add_table(schema)
        schemas[schema.name] = schema
    for entry in manifest["foreign_keys"]:
        catalog.add_foreign_key(
            ForeignKeyConstraint(
                _require(entry, "child_table", "catalog.json foreign key"),
                tuple(_require(entry, "child_columns", "catalog.json foreign key")),
                _require(entry, "parent_table", "catalog.json foreign key"),
                tuple(_require(entry, "parent_columns", "catalog.json foreign key")),
            )
        )

    database = Database(catalog)
    for name, schema in schemas.items():
        filename = f"{name}.jsonl"
        rows = _read_rows(
            root / filename,
            schema,
            framed=framed,
            expected=checksums.get(filename),
            anomalies=anomalies,
            suspects=suspects,
        )
        database.tables[name.lower()] = Table(schema.column_names, rows)

    # Re-register summary tables around the already-loaded snapshots.
    from repro.asts.definition import SummaryTable
    from repro.refresh.policy import RefreshState

    for entry in manifest["summary_tables"]:
        name = _require(entry, "name", "catalog.json summary entry")
        sql = _require(entry, "sql", f"catalog.json summary {name!r}")
        schema = schemas.get(name)
        if schema is None:
            raise ReproError(
                f"catalog.json: summary table {name!r} has no schema entry"
            )
        if name.lower() not in database.tables:
            raise ReproError(
                f"{name}.jsonl: snapshot for summary table {name!r} is missing"
            )
        try:
            graph = database.bind(sql, label="A")
        except ReproError as error:
            raise ReproError(
                f"catalog.json: summary table {name!r} definition does not "
                f"bind: {error}"
            ) from error
        table = database.tables[name.lower()]
        summary = SummaryTable(
            name=name,
            sql=sql,
            graph=graph,
            schema=schema,
            table=table,
            refresh=RefreshState(
                mode=entry.get("refresh_mode", "immediate"),
                pending_deltas=entry.get("pending_deltas", 0),
                last_refresh_lsn=entry.get("last_refresh_lsn", 0),
                quarantined=entry.get("quarantined", False),
                quarantine_reason=entry.get("quarantine_reason", ""),
            ),
        )
        summary.stats["rows"] = float(len(table))
        database._register_summary(summary)
    _read_delta_log(
        root / "deltas.jsonl",
        database,
        manifest.get("refresh_lsn", 0),
        schemas,
        framed=framed,
        expected=checksums.get("deltas.jsonl"),
        anomalies=anomalies,
        suspects=suspects,
    )
    #: recovery bookkeeping consumed by verify_database()
    database._load_anomalies = anomalies
    database._suspect_tables = suspects
    return database


def _load_manifest(path: Path) -> dict[str, Any]:
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ReproError(
            f"catalog.json: invalid JSON at line {error.lineno}: {error.msg}"
        ) from error
    for key in ("tables", "foreign_keys", "summary_tables"):
        if key not in manifest:
            raise ReproError(f"catalog.json: missing required key {key!r}")
    return manifest


def _require(entry: dict, key: str, context: str):
    try:
        return entry[key]
    except KeyError as error:
        raise ReproError(f"{context}: missing required key {key!r}") from error


def _read_payloads(
    path: Path,
    framed: bool,
    expected: dict | None,
    anomalies: list[str],
    suspects: set[str],
) -> list[str]:
    """The JSON payload of each line of ``path``.

    v2 (framed): every line's CRC is verified. A bad *last* line is a
    torn tail — truncated and reported, not fatal; a bad interior line
    raises. The whole file's CRC is then compared against the manifest's
    ``expected`` record; a mismatch (beyond an already-reported torn
    tail) means the file belongs to a different save generation than the
    manifest, so the table is marked suspect for recovery.
    """
    text = path.read_text()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not framed:
        return [line for line in lines if line.strip()]
    payloads: list[str] = []
    torn = False
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        payload = _unframe(line)
        if payload is None:
            if number == len(lines):
                torn = True
                anomalies.append(
                    f"{path.name}: torn tail at line {number} truncated "
                    "(partial or corrupt trailing record)"
                )
                suspects.add(path.stem.lower())
                break
            raise ReproError(
                f"{path.name}: checksum mismatch at line {number} "
                "(corrupt record inside the file)"
            )
        payloads.append(payload)
    if expected is not None and not torn:
        actual = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
        if actual != expected.get("crc"):
            anomalies.append(
                f"{path.name}: contents do not match the manifest checksum "
                "(file is from a different save generation)"
            )
            suspects.add(path.stem.lower())
    return payloads


def _unframe(line: str) -> str | None:
    """The payload of one framed line, or None when the frame is bad."""
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    return payload


def _read_rows(
    path: Path,
    schema: TableSchema,
    framed: bool = False,
    expected: dict | None = None,
    anomalies: list[str] | None = None,
    suspects: set[str] | None = None,
) -> list[tuple]:
    anomalies = anomalies if anomalies is not None else []
    suspects = suspects if suspects is not None else set()
    if not path.exists():
        if expected is not None:
            raise ReproError(
                f"{path.name}: data file referenced by catalog.json is missing"
            )
        return []
    payloads = _read_payloads(path, framed, expected, anomalies, suspects)
    decoders = [_decoder(column.dtype) for column in schema.columns]
    rows: list[tuple] = []
    for number, payload in enumerate(payloads, start=1):
        try:
            raw = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ReproError(
                f"{path.name}: invalid JSON at line {number}: {error.msg}"
            ) from error
        if len(raw) != len(decoders):
            raise ReproError(
                f"row width mismatch in {path.name} at line {number}: {raw!r}"
            )
        try:
            rows.append(
                tuple(
                    None if value is None else decode(value)
                    for decode, value in zip(decoders, raw)
                )
            )
        except (ValueError, TypeError) as error:
            raise ReproError(
                f"{path.name}: cannot decode row at line {number}: {error}"
            ) from error
    return rows


def _read_delta_log(
    path: Path,
    database: Database,
    lsn: int,
    schemas: dict[str, TableSchema],
    framed: bool = False,
    expected: dict | None = None,
    anomalies: list[str] | None = None,
    suspects: set[str] | None = None,
) -> None:
    from repro.refresh.log import DeltaBatch

    anomalies = anomalies if anomalies is not None else []
    suspects = suspects if suspects is not None else set()
    by_key = {schema.name.lower(): schema for schema in schemas.values()}
    batches = []
    if path.exists():
        payloads = _read_payloads(path, framed, expected, anomalies, suspects)
        for number, payload in enumerate(payloads, start=1):
            try:
                entry = json.loads(payload)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path.name}: invalid JSON at line {number}: {error.msg}"
                ) from error
            table = _require(entry, "table", f"{path.name} line {number}")
            schema = by_key.get(table)
            if schema is None:
                raise ReproError(
                    f"{path.name} line {number}: delta batch references "
                    f"unknown table {table!r}"
                )
            decoders = [_decoder(column.dtype) for column in schema.columns]
            try:
                rows = tuple(
                    tuple(
                        None if value is None else decode(value)
                        for decode, value in zip(decoders, raw)
                    )
                    for raw in _require(
                        entry, "rows", f"{path.name} line {number}"
                    )
                )
                batches.append(
                    DeltaBatch(
                        _require(entry, "seq", f"{path.name} line {number}"),
                        table,
                        _require(entry, "sign", f"{path.name} line {number}"),
                        rows,
                    )
                )
            except (ValueError, TypeError) as error:
                raise ReproError(
                    f"{path.name}: cannot decode delta batch at line "
                    f"{number}: {error}"
                ) from error
    elif expected is not None:
        anomalies.append(
            "deltas.jsonl: staged delta log referenced by catalog.json is "
            "missing (staged changes lost; deferred summaries will be "
            "verified)"
        )
        suspects.add("deltas")
    database.delta_log.restore(lsn, batches)


# ----------------------------------------------------------------------
# Wire snapshots (replication bootstrap)
# ----------------------------------------------------------------------
def database_state_payload(database: Database) -> dict[str, Any]:
    """The complete database state as one JSON-ready dict.

    Same content as a :func:`save_database` directory — schemas, rows,
    summary definitions with refresh state, the staged delta log — in a
    single payload instead of files, so a standby can bootstrap over the
    wire (op ``repl.snapshot``) without sharing a filesystem with the
    primary. Round-trips through :func:`database_from_payload`.
    """
    summaries = {
        summary.name: summary for summary in database.summary_tables.values()
    }
    return {
        "format_version": FORMAT_VERSION,
        "tables": [
            _schema_to_json(schema)
            for schema in database.catalog.tables.values()
        ],
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_columns": list(fk.child_columns),
                "parent_table": fk.parent_table,
                "parent_columns": list(fk.parent_columns),
            }
            for fk in database.catalog.foreign_keys
        ],
        "summary_tables": [
            {
                "name": summary.name,
                "sql": summary.sql,
                "refresh_mode": summary.refresh.mode,
                "pending_deltas": summary.refresh.pending_deltas,
                "last_refresh_lsn": summary.refresh.last_refresh_lsn,
                "quarantined": summary.refresh.quarantined,
                "quarantine_reason": summary.refresh.quarantine_reason,
            }
            for summary in summaries.values()
        ],
        "refresh_lsn": database.delta_log.lsn,
        "rows": {
            schema.name: [
                [_encode(value) for value in row]
                for row in database.tables[key].rows
            ]
            for key, schema in database.catalog.tables.items()
        },
        "deltas": [
            {
                "seq": batch.seq,
                "table": batch.table,
                "sign": batch.sign,
                "rows": [
                    [_encode(value) for value in row] for row in batch.rows
                ],
            }
            for batch in database.delta_log.batches()
        ],
    }


def database_from_payload(payload: dict[str, Any]) -> Database:
    """Reconstruct a database from :func:`database_state_payload`.

    The payload comes off the wire already CRC-protected by the line
    framing, so unlike :func:`load_database` there is no torn-tail /
    generation-mismatch handling: anything malformed raises.
    """
    from repro.asts.definition import SummaryTable
    from repro.refresh.log import DeltaBatch
    from repro.refresh.policy import RefreshState

    version = payload.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ReproError(f"unsupported snapshot format {version!r}")
    catalog = Catalog()
    schemas: dict[str, TableSchema] = {}
    for entry in payload["tables"]:
        schema = _schema_from_json(entry)
        catalog.add_table(schema)
        schemas[schema.name] = schema
    for entry in payload["foreign_keys"]:
        catalog.add_foreign_key(
            ForeignKeyConstraint(
                entry["child_table"],
                tuple(entry["child_columns"]),
                entry["parent_table"],
                tuple(entry["parent_columns"]),
            )
        )
    database = Database(catalog)
    rows_by_table = payload.get("rows", {})
    for name, schema in schemas.items():
        decoders = [_decoder(column.dtype) for column in schema.columns]
        rows = [
            tuple(
                None if value is None else decode(value)
                for decode, value in zip(decoders, raw)
            )
            for raw in rows_by_table.get(name, [])
        ]
        database.tables[name.lower()] = Table(schema.column_names, rows)
    for entry in payload["summary_tables"]:
        name = _require(entry, "name", "snapshot summary entry")
        sql = _require(entry, "sql", f"snapshot summary {name!r}")
        schema = schemas.get(name)
        if schema is None or name.lower() not in database.tables:
            raise ReproError(
                f"snapshot summary table {name!r} has no schema or rows"
            )
        graph = database.bind(sql, label="A")
        table = database.tables[name.lower()]
        summary = SummaryTable(
            name=name,
            sql=sql,
            graph=graph,
            schema=schema,
            table=table,
            refresh=RefreshState(
                mode=entry.get("refresh_mode", "immediate"),
                pending_deltas=entry.get("pending_deltas", 0),
                last_refresh_lsn=entry.get("last_refresh_lsn", 0),
                quarantined=entry.get("quarantined", False),
                quarantine_reason=entry.get("quarantine_reason", ""),
            ),
        )
        summary.stats["rows"] = float(len(table))
        database._register_summary(summary)
    batches = []
    by_key = {schema.name.lower(): schema for schema in schemas.values()}
    for entry in payload.get("deltas", []):
        schema = by_key.get(entry["table"])
        if schema is None:
            raise ReproError(
                f"snapshot delta batch references unknown table "
                f"{entry['table']!r}"
            )
        decoders = [_decoder(column.dtype) for column in schema.columns]
        batches.append(
            DeltaBatch(
                entry["seq"],
                entry["table"],
                entry["sign"],
                tuple(
                    tuple(
                        None if value is None else decode(value)
                        for decode, value in zip(decoders, raw)
                    )
                    for raw in entry["rows"]
                ),
            )
        )
    database.delta_log.restore(payload.get("refresh_lsn", 0), batches)
    return database


# ----------------------------------------------------------------------
# Startup verification / recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveryReport:
    """What :func:`verify_database` found and did."""

    #: load-time anomalies (torn tails, generation mismatches) plus any
    #: inconsistencies found during verification
    anomalies: list[str] = field(default_factory=list)
    #: summaries recomputed from base tables back to consistency
    rebuilt: list[str] = field(default_factory=list)
    #: summaries that could not be rebuilt and were quarantined
    quarantined: list[str] = field(default_factory=list)
    #: staleness counters corrected against the delta log
    repaired: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.anomalies or self.rebuilt or self.quarantined or self.repaired
        )

    def describe(self) -> str:
        if self.clean:
            return "database verified: consistent"
        lines = ["database verified with recovery actions:"]
        for anomaly in self.anomalies:
            lines.append(f"  anomaly: {anomaly}")
        for name in self.rebuilt:
            lines.append(f"  rebuilt: {name}")
        for name in self.quarantined:
            lines.append(f"  quarantined: {name}")
        for fix in self.repaired:
            lines.append(f"  repaired: {fix}")
        return "\n".join(lines)


def verify_database(database: Database, repair: bool = True) -> RecoveryReport:
    """Cross-check summary-table state against the delta log and the
    load-time anomaly record; returns a :class:`RecoveryReport`.

    A summary is *suspect* when its snapshot (or one of its base tables,
    or the delta log) had a load anomaly, or when its
    ``last_refresh_lsn`` runs ahead of the delta log. With ``repair``
    (the default), suspect summaries are rebuilt by full recomputation
    from the loaded base tables — re-admitting them if they were
    quarantined — and summaries whose rebuild fails are quarantined;
    deferred summaries' ``pending_deltas`` counters are recomputed from
    the log. With ``repair=False`` the problems are only reported.

    Base tables are never modified: recovery treats them as the source
    of truth, which is exactly the paper's contract — summary tables are
    an optimization, so after recovery each one is either consistent
    with the base data or quarantined out of routing.
    """
    report = RecoveryReport(
        anomalies=list(getattr(database, "_load_anomalies", []))
    )
    suspects = set(getattr(database, "_suspect_tables", ()))
    with database._maintenance_lock:
        log = database.delta_log
        changed = False
        for summary in list(database.summary_tables.values()):
            state = summary.refresh
            reasons = []
            if summary.name.lower() in suspects:
                reasons.append("summary snapshot anomaly")
            bad_bases = sorted(summary.base_tables() & suspects)
            if bad_bases:
                reasons.append(f"base table anomaly: {', '.join(bad_bases)}")
            if state.is_deferred and "deltas" in suspects:
                reasons.append("delta log anomaly")
            if state.last_refresh_lsn > log.lsn:
                reasons.append(
                    f"last_refresh_lsn {state.last_refresh_lsn} ahead of "
                    f"delta log lsn {log.lsn}"
                )
            if not reasons and state.is_deferred and not state.quarantined:
                expected = len(
                    log.pending_for(
                        summary.base_tables(), state.last_refresh_lsn
                    )
                )
                if state.pending_deltas != expected:
                    if repair:
                        state.pending_deltas = expected
                        report.repaired.append(
                            f"{summary.name}: pending_deltas corrected to "
                            f"{expected}"
                        )
                        changed = True
                    else:
                        report.anomalies.append(
                            f"{summary.name}: pending_deltas "
                            f"{state.pending_deltas} disagrees with the "
                            f"delta log ({expected})"
                        )
            if not reasons:
                continue
            if not repair:
                report.anomalies.append(
                    f"{summary.name}: inconsistent ({'; '.join(reasons)})"
                )
                continue
            try:
                data = database.execute_graph(summary.graph)
                summary.table.rows[:] = data.rows
                summary.stats["rows"] = float(len(data))
                state.pending_deltas = 0
                state.last_refresh_lsn = log.lsn
                state.release_quarantine()
                database._scheduler.reset_attempts(summary.name)
                report.rebuilt.append(
                    f"{summary.name} ({'; '.join(reasons)})"
                )
            except Exception as error:
                state.quarantine(
                    f"recovery rebuild failed: {error} "
                    f"(after: {'; '.join(reasons)})"
                )
                report.quarantined.append(summary.name)
            changed = True
        if changed:
            database._prune_delta_log()
            database._bump_rewrite_epoch()
    return report


# ----------------------------------------------------------------------
# Shared encoding helpers
# ----------------------------------------------------------------------
def _schema_to_json(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.dtype.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "keys": [
            {"columns": list(k.columns), "primary": k.is_primary}
            for k in schema.keys
        ],
    }


def _schema_from_json(entry: dict[str, Any]) -> TableSchema:
    columns = [
        Column(c["name"], DataType(c["type"]), c["nullable"])
        for c in entry["columns"]
    ]
    keys = [UniqueKey(tuple(k["columns"]), k["primary"]) for k in entry["keys"]]
    return TableSchema(entry["name"], columns, keys)


def _encode(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _decoder(dtype: DataType):
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat
    if dtype is DataType.FLOAT:
        return float
    if dtype is DataType.INTEGER:
        return int
    return lambda value: value
