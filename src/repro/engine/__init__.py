"""Execution engine: tables, aggregates, executor, and the Database facade."""

from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.persist import load_database, save_database
from repro.engine.reference import ReferenceExecutor
from repro.engine.stats import collect_stats, estimate_group_count
from repro.engine.table import Table, tables_equal

__all__ = [
    "Database",
    "Executor",
    "ReferenceExecutor",
    "Table",
    "collect_stats",
    "estimate_group_count",
    "load_database",
    "save_database",
    "tables_equal",
]
