"""A deliberately naive reference executor.

This is an independent, unoptimized implementation of QGM semantics used
to cross-validate the real executor: SELECT boxes build the full
cartesian product of their children and only then filter (no predicate
pushdown, no hash joins, no join ordering), grouping is done by sorting
rather than hashing, and DISTINCT is a quadratic scan. Anything the two
engines disagree on is a bug in one of them — property tests feed both
random queries and require identical row multisets.

Never use this for real workloads; cartesian products explode.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from repro.engine.aggregates import make_accumulator
from repro.engine.table import Row, Table
from repro.errors import ExecutionError
from repro.expr.evaluator import evaluate
from repro.expr.nodes import AggCall, ColumnRef, Expr
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
)


class ReferenceExecutor:
    """Straight-line QGM evaluation, no optimizations anywhere."""

    def __init__(self, tables: Mapping[str, Table]):
        self._tables = tables

    def run(self, graph: QueryGraph) -> Table:
        result = self._evaluate(graph.root)
        if graph.order_by:
            result = Table(result.columns, result.rows)
            result.sort_by(graph.order_by)
        if graph.limit is not None:
            result = Table(result.columns, result.rows[: graph.limit])
        return result

    # ------------------------------------------------------------------
    def _evaluate(self, box: QGMBox) -> Table:
        if isinstance(box, BaseTableBox):
            table = self._tables.get(box.table_name.lower())
            if table is None:
                raise ExecutionError(f"no data for {box.table_name!r}")
            return table
        if isinstance(box, SelectBox):
            return self._evaluate_select(box)
        if isinstance(box, GroupByBox):
            return self._evaluate_groupby(box)
        if isinstance(box, UnionAllBox):
            rows: list[Row] = []
            for quantifier in box.quantifiers():
                rows.extend(self._evaluate(quantifier.box).rows)
            return Table(box.output_names, rows)
        raise ExecutionError(f"cannot execute {box!r}")

    def _evaluate_select(self, box: SelectBox) -> Table:
        quantifiers = box.quantifiers()
        child_tables = [self._evaluate(q.box) for q in quantifiers]
        index_of: dict[ColumnRef, int] = {}
        offset = 0
        for quantifier, table in zip(quantifiers, child_tables):
            for i, column in enumerate(table.columns):
                index_of[ColumnRef(quantifier.name, column)] = offset + i
            offset += len(table.columns)

        out_rows: list[Row] = []
        for combo in itertools.product(*(t.rows for t in child_tables)):
            row = tuple(itertools.chain.from_iterable(combo))
            if not self._passes(box.predicates, row, index_of):
                continue
            out_rows.append(
                tuple(
                    self._scalar(qcl.expr, row, index_of) for qcl in box.outputs
                )
            )
        if box.distinct:
            unique: list[Row] = []
            for row in out_rows:  # quadratic on purpose: independent path
                if row not in unique:
                    unique.append(row)
            out_rows = unique
        return Table(box.output_names, out_rows)

    def _evaluate_groupby(self, box: GroupByBox) -> Table:
        child = self._evaluate(box.child_quantifier.box)
        qname = box.child_quantifier.name

        def source_index(ref: ColumnRef) -> int:
            if ref.qualifier != qname:
                raise ExecutionError(f"foreign reference {ref!r}")
            return child.column_index(ref.name)

        out_rows: list[Row] = []
        for grouping_set in box.grouping_sets:
            key_indexes = [
                source_index(box.output(name).expr) for name in grouping_set
            ]
            # Sort-based grouping (the real engine hashes).
            keyed = sorted(
                child.rows,
                key=lambda row: tuple(_orderable(row[i]) for i in key_indexes),
            )
            for key, group_iter in itertools.groupby(
                keyed, key=lambda row: tuple(row[i] for i in key_indexes)
            ):
                group = list(group_iter)
                out_rows.append(
                    self._group_row(box, grouping_set, key, group, source_index)
                )
            if not child.rows and not grouping_set:
                out_rows.append(
                    self._group_row(box, grouping_set, (), [], source_index)
                )
        return Table(box.output_names, out_rows)

    def _group_row(self, box, grouping_set, key, group, source_index) -> Row:
        key_by_name = dict(zip(grouping_set, key))
        values = []
        for qcl in box.outputs:
            if isinstance(qcl.expr, AggCall):
                accumulator = make_accumulator(qcl.expr)
                for row in group:
                    if qcl.expr.arg is None:
                        accumulator.add(True)
                    else:
                        accumulator.add(row[source_index(qcl.expr.arg)])
                values.append(accumulator.result())
            elif qcl.name in key_by_name:
                values.append(key_by_name[qcl.name])
            else:
                values.append(None)
        return tuple(values)

    # ------------------------------------------------------------------
    @staticmethod
    def _passes(predicates, row: Row, index_of) -> bool:
        def resolve(ref: ColumnRef) -> Any:
            return row[index_of[ref]]

        return all(evaluate(p, resolve) is True for p in predicates)

    @staticmethod
    def _scalar(expr: Expr, row: Row, index_of) -> Any:
        def resolve(ref: ColumnRef) -> Any:
            return row[index_of[ref]]

        return evaluate(expr, resolve)


def _orderable(value: Any) -> tuple:
    if value is None:
        return (1, "", "")
    return (0, type(value).__name__, value)
