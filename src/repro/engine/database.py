"""The `Database` facade — the library's main entry point.

Ties together the catalog, the table store, the executor, summary-table
management, and (lazily, to keep layering clean) the matcher/rewriter::

    db = Database(credit_card_catalog())
    db.load("Trans", rows)
    db.create_summary_table("AST1", "SELECT faid, flid, ... GROUP BY ...")
    result = db.execute(my_query)                 # rewritten automatically
    raw = db.execute(my_query, use_summary_tables=False)

Rewriting runs through a three-layer *matching fast path* (see
docs/ALGORITHM.md, "The matching fast path"): an AST signature index
prunes implausible candidates before any navigation, a bounded LRU of
rewrite decisions keyed by the query graph's structural fingerprint
replays known outcomes without matching at all, and expression
normalization/hashing is memoized. ``rewrite_stats()`` exposes the
counters; ``configure_fast_path()`` disables layers for ablation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable

from repro.catalog.schema import Catalog, Column, TableSchema
from repro.catalog.types import DataType, infer_literal_type
from repro.engine.executor import Executor
from repro.engine.table import Row, Table
from repro.errors import (
    CatalogError,
    MatchBudgetExceeded,
    QueryCancelled,
    ReproError,
)
from repro.governor import QueryGovernor
from repro.governor import scope as governor_scope
from repro.governor.governor import UNSET as _GOV_UNSET
from repro.obs import events as _events
from repro.obs import spans as _spans
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBuffer
from repro.qgm.boxes import QueryGraph
from repro.qgm.build import build_graph
from repro.qgm.fingerprint import fingerprint

#: default slow-query log threshold, milliseconds (see docs/OBSERVABILITY.md;
#: override per session with ``SET SLOW QUERY <ms>`` or ``SET SLOW QUERY OFF``)
DEFAULT_SLOW_QUERY_MS = 100.0


class Database:
    """An in-memory database with automatic summary tables.

    ``rewrite_cache_size`` bounds the rewrite decision cache (LRU
    entries); 0 disables decision caching entirely.
    """

    def __init__(self, catalog: Catalog | None = None, rewrite_cache_size: int = 256):
        self.catalog = catalog or Catalog()
        self.tables: dict[str, Table] = {}
        self.summary_tables: dict[str, "SummaryTable"] = {}
        # Lazily imported (like the matcher/rewriter) to avoid an import
        # cycle through repro.rewrite → repro.asts → repro.engine.
        from repro.refresh.log import DeltaLog
        from repro.refresh.policy import RefreshAge
        from repro.refresh.scheduler import RefreshScheduler
        from repro.rewrite.cache import RewriteCache, RewriteStats
        from repro.rewrite.index import SummaryIndex

        for schema in self.catalog.tables.values():
            self.tables[schema.name.lower()] = Table.from_schema(schema)
        #: the unified metrics registry — fast-path counters (via
        #: RewriteStats), scheduler counters, phase timers, slow-query
        #: counts all land here; dump with \metrics / to_prometheus()
        self.metrics = MetricsRegistry()
        self._summary_index = SummaryIndex()
        self._rewrite_cache = RewriteCache(rewrite_cache_size)
        self._rewrite_stats = RewriteStats(registry=self.metrics)
        self._rewrite_epoch = 0
        self._fast_path_index = True
        self._fast_path_cache = True
        # Deferred maintenance: staged base-table deltas, the background
        # refresh worker, and the session's freshness tolerance
        # (SET REFRESH AGE; 0 = only fully fresh summaries match).
        self._delta_log = DeltaLog()
        self._scheduler = RefreshScheduler(self, registry=self.metrics)
        self._maintenance_lock = threading.RLock()
        # Coarse catalog lock: serializes DDL (CREATE/DROP TABLE and
        # SUMMARY TABLE, full refreshes) against each other. Queries do
        # NOT take it — the rewrite fast path stays lock-free and is
        # kept safe by (a) capturing the decision-cache epoch before
        # matching and bumping it only after a mutation completes, and
        # (b) executing against a per-query snapshot of the table store
        # plus the matched summaries' table objects (see execute_graph).
        # Lock order where both are held: _catalog_lock, then
        # _maintenance_lock.
        self._catalog_lock = threading.RLock()
        self.refresh_age = RefreshAge.CURRENT
        #: last sandboxed rewrite failure (diagnostics; see
        #: :meth:`_rewrite_for_execution`)
        self.last_rewrite_error: str | None = None
        # Observability: per-query match tracing (\trace on|off|last) and
        # the slow-query log (SET SLOW QUERY <ms>|OFF).
        self._tracing = False
        self._trace_buffer = TraceBuffer()
        self.slow_query_ms: float | None = DEFAULT_SLOW_QUERY_MS
        self.slow_queries: deque[dict] = deque(maxlen=64)
        # Query governor: SET QUERY TIMEOUT/MAXROWS limits, admission
        # control, and the per-shape circuit breaker (see
        # docs/ROBUSTNESS.md, "Query governor & load shedding"). Fully
        # disarmed by default — open_scope() returns None and every
        # instrumentation site short-circuits.
        self.governor = QueryGovernor(metrics=self.metrics)
        #: last governor intervention (degradation/breaker skip), for
        #: diagnostics and the CLI's \governor command
        self.last_governor_event: str | None = None
        # Morsel-driven executor parallelism (SET EXECUTOR PARALLEL
        # <n>|OFF, docs/EXECUTOR.md): the session owns one worker pool so
        # per-query runs don't pay thread start-up. Off by default.
        self._executor_parallel: int | None = None
        self._executor_pool = None
        #: batch/parallelism counters of the most recent executor run
        #: (EXPLAIN ANALYZE's ``-- executor --`` section)
        self.last_executor_stats = None

    # ------------------------------------------------------------------
    # Data definition / loading
    # ------------------------------------------------------------------
    def add_table(self, schema: TableSchema) -> None:
        """Register a new base table (empty until loaded)."""
        with self._catalog_lock:
            self.catalog.add_table(schema)
            self.tables[schema.name.lower()] = Table.from_schema(schema)

    def load(self, table_name: str, rows: Iterable[Row]) -> int:
        """Append validated rows to a base table; returns the new count.

        Loading does *not* refresh summary tables — call
        :meth:`refresh_summary_tables` or use
        :func:`repro.asts.maintenance.apply_insert` for incremental
        maintenance.
        """
        schema = self.catalog.table(table_name)
        table = self.tables[schema.name.lower()]
        table.extend_checked(rows, schema)
        return len(table)

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"no table named {name!r}")
        return self.tables[key]

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def bind(self, sql: str, label: str = "Q") -> QueryGraph:
        """Parse + bind SQL against this database's catalog."""
        return build_graph(sql, self.catalog, label=label)

    def execute(
        self, sql: str, use_summary_tables: bool = True, tolerance=None,
        token=None, timeout_ms=_GOV_UNSET, max_rows=_GOV_UNSET,
        max_mem=_GOV_UNSET, executor_parallel=_GOV_UNSET,
        client: str | None = None,
    ) -> Table:
        """Run a query, rewriting it over summary tables when possible.

        ``tolerance`` is a per-query freshness override (a
        :class:`repro.refresh.policy.RefreshAge`); by default the
        session's ``refresh_age`` decides how stale a REFRESH DEFERRED
        summary may be and still serve this query. ``token`` is an
        optional :class:`repro.governor.CancellationToken` another
        thread may trigger to stop this query cooperatively.

        ``timeout_ms`` / ``max_rows`` / ``executor_parallel`` override
        the database-level governor and executor settings for this one
        query — the query server passes each connection's ``SET`` state
        through them, so per-client knobs never mutate shared state.
        ``client`` tags slow-query-log entries with the submitting
        connection's id.
        """
        return self._execute_select(
            sql, sql, use_summary_tables, tolerance=tolerance, token=token,
            timeout_ms=timeout_ms, max_rows=max_rows, max_mem=max_mem,
            executor_parallel=executor_parallel, client=client,
        )

    def execute_statement(
        self, statement, sql_text: str | None = None,
        use_summary_tables: bool = True, tolerance=None, token=None,
        timeout_ms=_GOV_UNSET, max_rows=_GOV_UNSET, max_mem=_GOV_UNSET,
        executor_parallel=_GOV_UNSET, client: str | None = None,
    ) -> Table:
        """:meth:`execute` for an already-parsed SELECT statement (the
        query server parses once to fingerprint the query for its result
        cache, then executes the same parse tree here)."""
        return self._execute_select(
            statement, sql_text, use_summary_tables, tolerance=tolerance,
            token=token, timeout_ms=timeout_ms, max_rows=max_rows,
            max_mem=max_mem, executor_parallel=executor_parallel,
            client=client,
        )

    def _execute_select(
        self, source, sql_text: str | None, use_summary_tables: bool,
        tolerance=None, token=None, timeout_ms=_GOV_UNSET,
        max_rows=_GOV_UNSET, max_mem=_GOV_UNSET,
        executor_parallel=_GOV_UNSET, client: str | None = None,
    ) -> Table:
        """Bind → rewrite → run, with phase timers (bind/match/execute,
        milliseconds) in the metrics registry, optional match tracing
        (``set_tracing``), and the slow-query log. ``source`` is SQL text
        or an already-parsed statement; ``sql_text`` is the original text
        for the trace/slow log.

        Governed end to end: admission control may shed the query
        (:class:`~repro.errors.QueryRejected`) before any work happens,
        and the governor scope — when any limit or ``token`` is set —
        stays active across bind, match, and execute."""
        admit_pc = time.perf_counter()
        with self.governor.admission.admit():
            _spans.record("admission.wait", admit_pc)
            budget = self.governor.open_scope(
                token, timeout_ms=timeout_ms, max_rows=max_rows,
                max_mem=max_mem,
            )
            try:
                with governor_scope.activate(budget):
                    return self._execute_governed(
                        source, sql_text, use_summary_tables, tolerance,
                        executor_parallel=executor_parallel, client=client,
                    )
            finally:
                # Return the query's reserved bytes to the broker even
                # when it failed or was cancelled mid-operator.
                if budget is not None and budget.reservation is not None:
                    budget.reservation.close()

    def _execute_governed(
        self, source, sql_text: str | None, use_summary_tables: bool,
        tolerance=None, executor_parallel=_GOV_UNSET,
        client: str | None = None,
    ) -> Table:
        metrics = self.metrics
        total_start = time.perf_counter()
        trace = _trace.start(sql_text) if self._tracing else None
        try:
            started = time.perf_counter()
            graph = build_graph(source, self.catalog)
            bind_ms = metrics.observe_ms("phase_bind_ms", started)
            _spans.record("db.bind", started)
            match_ms = None
            overlay = None
            if use_summary_tables and self.summary_tables:
                started = time.perf_counter()
                graph, overlay = self._rewrite_for_execution(
                    source, graph, tolerance=tolerance
                )
                match_ms = metrics.observe_ms("phase_match_ms", started)
                if _spans.TRACER is not None:
                    rewrite_attrs = {"rewritten": overlay is not None}
                    if trace is not None:
                        # join the request span to the match tracer's
                        # per-query record (\trace N)
                        rewrite_attrs["match_trace"] = trace.trace_id
                    _spans.record("db.rewrite", started, **rewrite_attrs)
            started = time.perf_counter()
            result = self.execute_graph(
                graph, overlay=overlay, parallel=executor_parallel
            )
            execute_ms = metrics.observe_ms("phase_execute_ms", started)
            _spans.record("db.execute", started)
        finally:
            if trace is not None:
                _trace.finish()
        total_ms = metrics.observe_ms("query_total_ms", total_start)
        if trace is not None:
            trace.set_phase("bind", bind_ms)
            if match_ms is not None:
                # apply_match recorded "compensate" inside the match window
                trace.set_phase(
                    "match", match_ms - trace.phases.get("compensate", 0.0)
                )
            trace.set_phase("execute", execute_ms)
            self._trace_buffer.append(trace)
        self._note_slow_query(sql_text, total_ms, client=client)
        return result

    def _note_slow_query(
        self, sql_text: str | None, total_ms: float, client: str | None = None
    ) -> None:
        threshold = self.slow_query_ms
        if threshold is None or total_ms < threshold:
            return
        self.metrics.counter(
            "slow_queries_total", "queries over the SET SLOW QUERY threshold"
        ).inc()
        entry = {
            "sql": sql_text if sql_text is not None else "(bound graph)",
            "ms": round(total_ms, 3),
            "threshold_ms": threshold,
            "at": time.time(),
        }
        if client is not None:
            entry["client"] = client
        trace_id = _spans.current_trace_id()
        if trace_id is not None:
            # join key into the span ring and the server session
            entry["trace_id"] = trace_id
        self.slow_queries.append(entry)

    def execute_graph(
        self, graph: QueryGraph, overlay: dict | None = None,
        parallel=_GOV_UNSET,
    ) -> Table:
        """Run a bound (possibly rewritten) graph.

        The executor receives a *snapshot* of the table store, optionally
        patched with ``overlay`` (the table objects of the summaries a
        rewrite matched). Concurrent DDL — a ``DROP SUMMARY TABLE``
        racing this query — therefore cannot yank a table out from under
        the run: the query finishes against the objects it planned with.
        ``parallel`` overrides the session's morsel-worker count for
        this one run (the query server passes per-connection ``SET
        EXECUTOR PARALLEL`` state through it).
        """
        tables = dict(self.tables)
        if overlay:
            tables.update(overlay)
        if parallel is _GOV_UNSET:
            workers, pool = self._executor_parallel, self._executor_pool
        else:
            # Per-query override: never borrow the shared pool — its
            # size matches the database-level setting, not this one.
            workers, pool = parallel, None
        executor = Executor(
            tables,
            metrics=self.metrics,
            parallel=workers,
            pool=pool,
        )
        result = executor.run(graph)
        self.last_executor_stats = executor.stats
        return result

    @property
    def executor_parallel(self) -> int | None:
        """Configured morsel-parallel worker count (``None`` ⇒ serial)."""
        return self._executor_parallel

    def set_executor_parallel(self, workers: int | None) -> None:
        """Enable/disable morsel-driven parallel execution.

        ``workers`` is the thread-pool size (``None`` or ``0`` turns the
        pool off). Every query — including summary-table recomputes run
        by the refresh scheduler — executes its scans, hash-join probes
        and per-cuboid group-bys across the pool; partial aggregates are
        merged with the derivation rules (a)–(g).
        """
        if workers is not None and workers < 1:
            workers = None
        old_pool = self._executor_pool
        self._executor_pool = None
        self._executor_parallel = workers
        if old_pool is not None:
            old_pool.shutdown(wait=True)
        if workers:
            from concurrent.futures import ThreadPoolExecutor

            self._executor_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-exec"
            )

    def run_sql(self, sql: str, use_summary_tables: bool = True):
        """Execute one statement of any supported kind (SELECT, CREATE
        TABLE, CREATE SUMMARY TABLE, DROP SUMMARY TABLE, INSERT, DELETE,
        EXPLAIN). Returns a :class:`~repro.engine.table.Table` for
        SELECT/EXPLAIN, otherwise a status string."""
        from repro.sql.statements import parse_statement

        started = time.perf_counter()
        statement = parse_statement(sql)
        self.metrics.observe_ms("phase_parse_ms", started)
        return self.run_statement(statement, sql, use_summary_tables)

    def run_statement(
        self, statement, sql: str, use_summary_tables: bool = True
    ):
        """Execute one already-parsed statement (see :meth:`run_sql`).

        The query server parses each statement once — to classify it and
        to fingerprint SELECTs for the result cache — and hands the same
        tree here, so the parse cost is paid exactly once per request.
        """
        from repro.sql.ast import SelectStatement, UnionAll
        from repro.sql.statements import (
            CreateSummaryTable,
            CreateTable,
            DeleteValues,
            DropSummaryTable,
            Explain,
            InsertValues,
            RefreshSummaryTables,
            SetExecutorParallel,
            SetQueryMaxMem,
            SetQueryMaxRows,
            SetQueryTimeout,
            SetRefreshAge,
            SetSlowQuery,
            SetTraceSample,
        )

        if isinstance(statement, (SelectStatement, UnionAll)):
            return self._execute_select(statement, sql, use_summary_tables)
        if isinstance(statement, Explain):
            if statement.analyze:
                return self._explain_analyze(statement.sql)
            return self._explain(statement.sql)
        if isinstance(statement, CreateTable):
            self._apply_create_table(statement)
            return f"table {statement.name} created"
        if isinstance(statement, CreateSummaryTable):
            summary = self.create_summary_table(
                statement.name, statement.sql, refresh_mode=statement.refresh_mode
            )
            mode_note = (
                ", refresh deferred" if summary.refresh.is_deferred else ""
            )
            return (
                f"summary table {summary.name} created "
                f"({summary.row_count} rows{mode_note})"
            )
        if isinstance(statement, DropSummaryTable):
            self.drop_summary_table(statement.name)
            return f"summary table {statement.name} dropped"
        if isinstance(statement, InsertValues):
            report = self.insert_rows(statement.table, statement.rows)
            return _maintenance_status(
                f"{len(statement.rows)} row(s) inserted into {statement.table}",
                report,
            )
        if isinstance(statement, DeleteValues):
            report = self.delete_rows(statement.table, statement.rows)
            return _maintenance_status(
                f"{len(statement.rows)} row(s) deleted from {statement.table}",
                report,
            )
        if isinstance(statement, SetRefreshAge):
            from repro.refresh.policy import RefreshAge

            self.refresh_age = RefreshAge(statement.max_pending)
            return f"refresh age set to {self.refresh_age.describe()}"
        if isinstance(statement, SetSlowQuery):
            self.slow_query_ms = statement.threshold_ms
            if statement.threshold_ms is None:
                return "slow query log disabled"
            return f"slow query threshold set to {statement.threshold_ms:g} ms"
        if isinstance(statement, SetQueryTimeout):
            self.governor.timeout_ms = statement.timeout_ms
            if statement.timeout_ms is None:
                return "query timeout disabled"
            return f"query timeout set to {statement.timeout_ms:g} ms"
        if isinstance(statement, SetQueryMaxRows):
            self.governor.max_rows = statement.max_rows
            if statement.max_rows is None:
                return "query maxrows disabled"
            return f"query maxrows set to {statement.max_rows}"
        if isinstance(statement, SetQueryMaxMem):
            self.governor.max_mem = statement.max_mem
            if statement.max_mem is None:
                return "query maxmem disabled"
            return f"query maxmem set to {statement.max_mem} byte(s)"
        if isinstance(statement, SetExecutorParallel):
            self.set_executor_parallel(statement.workers)
            if statement.workers is None:
                return "executor parallelism disabled"
            return f"executor parallelism set to {statement.workers} worker(s)"
        if isinstance(statement, SetTraceSample):
            _spans.set_sample_rate(statement.rate)
            if statement.rate is None:
                return "request tracing disabled"
            return f"trace sample rate set to {statement.rate:g}"
        if isinstance(statement, RefreshSummaryTables):
            names = statement.names or None
            self.refresh_summary_tables(names)
            refreshed = statement.names or tuple(
                summary.name for summary in self.summary_tables.values()
            )
            return f"refreshed: {', '.join(refreshed) or '(no summary tables)'}"
        raise ReproError(f"unsupported statement {statement!r}")

    def run_script(self, script: str) -> list:
        """Run a ';'-separated script; returns one result per statement."""
        from repro.sql.statements import split_statements

        return [self.run_sql(statement) for statement in split_statements(script)]

    def _apply_create_table(self, statement) -> None:
        from repro.catalog.schema import (
            Column,
            ForeignKeyConstraint,
            TableSchema,
            UniqueKey,
        )

        schema = TableSchema(
            statement.name,
            [Column(c.name, c.dtype, c.nullable) for c in statement.columns],
            keys=[UniqueKey(k.columns, k.is_primary) for k in statement.keys],
        )
        self.add_table(schema)
        try:
            for fk in statement.foreign_keys:
                self.catalog.add_foreign_key(
                    ForeignKeyConstraint(
                        statement.name, fk.columns, fk.parent_table, fk.parent_columns
                    )
                )
        except Exception:
            self.catalog.drop_table(statement.name)
            del self.tables[statement.name.lower()]
            raise

    def explain(self, sql: str, tolerance=None) -> str:
        """EXPLAIN output: the QGM graph, the matching decision, and the
        rewritten SQL/graph when a summary table applies. ``tolerance``
        is a per-call freshness override (the query server passes the
        connection's ``SET REFRESH AGE`` so remote EXPLAIN sees the same
        staleness gate the session's queries would)."""
        return self._explain(sql, tolerance=tolerance)

    def _explain(self, sql: str, tolerance=None):
        """EXPLAIN output: the QGM graph, the rewrite decision, and the
        matching fast-path counters for this statement. The SQL is bound
        exactly once: the graph is rendered first, then the same graph is
        handed to the rewriter (which mutates it in place on success)."""
        from repro.qgm.display import render_graph

        graph = self.bind(sql)
        lines = ["-- query graph --", render_graph(graph)]
        before = self._rewrite_stats.snapshot()
        try:
            result = self.rewrite(graph, tolerance=tolerance)
        except Exception as error:
            # Same sandbox contract as execution: a broken rewrite path
            # downgrades to "no rewrite", it never fails the EXPLAIN.
            self._rewrite_stats.rewrite_errors += 1
            self.last_rewrite_error = f"{type(error).__name__}: {error}"
            result = None
            lines.append(
                f"-- rewrite failed ({self.last_rewrite_error}); "
                "query would run on base tables --"
            )
        if result is None:
            lines.append("-- no summary-table rewrite applies --")
        else:
            lines.append("-- rewrite --")
            lines.append(result.explain())
            lines.append("-- rewritten SQL --")
            lines.append(result.sql)
            lines.append("-- rewritten graph --")
            lines.append(render_graph(result.graph))
        lines.append("-- matching fast path --")
        lines.append(_describe_fast_path(self._rewrite_stats.delta(before)))
        return "\n".join(lines)

    def explain_analyze(self, sql: str) -> str:
        """``EXPLAIN ANALYZE``: execute the query under a forced match
        trace and render the timed phase breakdown (parse/bind/match/
        compensate/execute, milliseconds) plus the per-AST match verdict
        table — for every enabled summary table, either the matched
        pattern section or the named reject reason (see
        ``docs/OBSERVABILITY.md``)."""
        return self._explain_analyze(sql)

    def _explain_analyze(self, sql: str) -> str:
        with self.governor.admission.admit():
            budget = self.governor.open_scope()
            with governor_scope.activate(budget):
                return self._explain_analyze_governed(sql, budget)

    def _explain_analyze_governed(self, sql: str, budget) -> str:
        from repro.sql.parser import parse

        metrics = self.metrics
        before = self._rewrite_stats.snapshot()
        total_start = time.perf_counter()
        started = total_start
        statement = parse(sql)
        parse_ms = metrics.observe_ms("phase_parse_ms", started)
        # Force a trace for this statement regardless of the session flag.
        trace = _trace.start(sql)
        error_note = None
        governor_note = None
        result = None
        try:
            started = time.perf_counter()
            graph = build_graph(statement, self.catalog)
            bind_ms = metrics.observe_ms("phase_bind_ms", started)
            match_ms = 0.0
            if self.summary_tables:
                started = time.perf_counter()
                try:
                    result = self._rewrite_bound(graph)
                except QueryCancelled:
                    raise
                except MatchBudgetExceeded as error:
                    # Graceful degradation, same ladder as execution:
                    # abandon matching, disarm the deadline, run base.
                    self._note_degradation(error)
                    governor_note = str(error)
                    graph = build_graph(statement, self.catalog)
                except Exception as error:
                    # Same sandbox contract as execution: rebind pristine.
                    self._rewrite_stats.rewrite_errors += 1
                    self.last_rewrite_error = f"{type(error).__name__}: {error}"
                    error_note = self.last_rewrite_error
                    graph = build_graph(statement, self.catalog)
                match_ms = metrics.observe_ms("phase_match_ms", started)
            exec_graph = result.graph if result is not None else graph
            overlay = _summary_overlay(result) if result is not None else None
            started = time.perf_counter()
            data = self.execute_graph(exec_graph, overlay=overlay)
            execute_ms = metrics.observe_ms("phase_execute_ms", started)
        finally:
            _trace.finish()
        total_ms = metrics.observe_ms("query_total_ms", total_start)
        compensate_ms = trace.phases.get("compensate", 0.0)
        trace.set_phase("parse", parse_ms)
        trace.set_phase("bind", bind_ms)
        trace.set_phase("match", max(0.0, match_ms - compensate_ms))
        trace.set_phase("execute", execute_ms)
        self._trace_buffer.append(trace)
        self._note_slow_query(sql, total_ms)

        span_trace = _spans.current_trace_id()
        lines = [
            f"-- EXPLAIN ANALYZE (trace #{trace.trace_id}"
            + (f", trace_id {span_trace}" if span_trace is not None else "")
            + ") --"
        ]
        lines.append("-- phases --")
        phase_rows = [
            ("parse", parse_ms),
            ("bind", bind_ms),
            ("match", max(0.0, match_ms - compensate_ms)),
            ("compensate", compensate_ms),
            ("execute", execute_ms),
            ("total", total_ms),
        ]
        for name, ms in phase_rows:
            lines.append(f"  {name:<11}{ms:>10.3f} ms")
        lines.append("-- match verdicts --")
        rows = trace.verdict_rows()
        if not rows:
            lines.append(
                "  (no summary tables registered)"
                if not self.summary_tables
                else "  (no candidates admissible for this query)"
            )
        else:
            name_w = max(len("summary"), max(len(r[0]) for r in rows))
            verdict_w = max(len("verdict"), max(len(r[1]) for r in rows))
            lines.append(f"  {'summary':<{name_w}}  {'verdict':<{verdict_w}}  detail")
            for name, verdict, detail in rows:
                lines.append(f"  {name:<{name_w}}  {verdict:<{verdict_w}}  {detail}")
        if error_note is not None:
            lines.append(
                f"-- rewrite failed ({error_note}); query ran on base tables --"
            )
        if governor_note is not None:
            lines.append(
                f"-- governor degraded the query ({governor_note}); "
                "ran on base tables --"
            )
        executor_stats = self.last_executor_stats
        if executor_stats is not None:
            lines.append("-- executor --")
            lines.extend(executor_stats.describe_lines())
        if budget is not None:
            lines.append("-- governor --")
            lines.extend(budget.describe_lines())
        if result is not None:
            lines.append("-- rewrite --")
            lines.append(result.explain())
            lines.append("-- rewritten SQL --")
            lines.append(result.sql)
        lines.append(f"-- result: {len(data)} row(s) --")
        lines.append("-- matching fast path --")
        lines.append(_describe_fast_path(self._rewrite_stats.delta(before)))
        return "\n".join(lines)

    def _rewrite_for_execution(self, source, graph: QueryGraph, tolerance=None):
        """The rewrite *sandbox*: ``(graph, overlay)`` to execute for
        ``source`` — ``overlay`` maps the matched summaries' table names
        to their :class:`~repro.engine.table.Table` objects, pinning
        them for the executor even if a concurrent ``DROP SUMMARY
        TABLE`` removes them from the store before execution starts.

        Rewriting is an optimization — it may improve a query plan but
        must never fail or corrupt a query answer (the paper's engine
        has the same contract). Any exception the rewrite path raises is
        caught here, counted as ``rewrite_errors``, and the query falls
        back to base-table execution. Because a failed rewrite can leave
        the in-place-mutated ``graph`` partially rewritten, the fallback
        re-binds a pristine graph from ``source`` (SQL text or a parsed
        statement) rather than trusting the possibly-dirty one.

        Two governor errors get special treatment: a cancellation is the
        caller's explicit request to stop, so it propagates rather than
        degrades; a match budget running out is the governor's graceful
        degradation — matching is abandoned (recorded as a
        ``budget-exhausted`` verdict, never an error), the deadline is
        disarmed so the base-table plan can finish, and the circuit
        breaker remembers the shape.
        """
        try:
            result = self._rewrite_bound(graph, tolerance=tolerance)
        except QueryCancelled:
            raise
        except MatchBudgetExceeded as error:
            self._note_degradation(error)
            from repro.qgm.build import build_graph

            return build_graph(source, self.catalog), None
        except Exception as error:
            self._rewrite_stats.rewrite_errors += 1
            self.last_rewrite_error = f"{type(error).__name__}: {error}"
            from repro.qgm.build import build_graph

            return build_graph(source, self.catalog), None
        if result is None:
            return graph, None
        return result.graph, _summary_overlay(result)

    def _note_degradation(self, error: MatchBudgetExceeded) -> None:
        """Record one match-phase budget exhaustion: mark the scope
        degraded (disarming its deadline so execution completes), feed
        the circuit breaker, bump the metrics counter, and fill the
        active trace's verdicts so EXPLAIN ANALYZE shows
        ``budget-exhausted`` instead of an empty match table."""
        detail = str(error)
        budget = governor_scope.current()
        if budget is not None:
            budget.mark_degraded(detail)
            if budget.fingerprint is not None:
                self.governor.breaker.record_timeout(budget.fingerprint)
        self.governor.note_degradation()
        self.last_governor_event = f"degraded to base tables: {detail}"
        t = _trace.ACTIVE
        if t is not None:
            # The attempt the budget interrupted has neither a pattern
            # nor a reject reason; later summaries were never begun.
            seen = set()
            for attempt in t.summaries:
                seen.add(attempt.name.lower())
                if (
                    attempt.reason is None
                    and attempt.pattern is None
                    and not attempt.applied
                ):
                    attempt.reason = "budget-exhausted"
                    attempt.detail = detail
            for summary in self.enabled_summary_tables():
                if summary.name.lower() not in seen:
                    t.verdict(summary.name, "budget-exhausted", detail)

    def rewrite(
        self,
        sql: str | QueryGraph,
        options: dict | None = None,
        tolerance=None,
    ):
        """Attempt a summary-table rewrite; returns a
        :class:`repro.rewrite.rewriter.RewriteResult` or None.

        Accepts either SQL text or an already-bound :class:`QueryGraph`
        (which is then rewritten *in place* on success — bind a fresh
        graph per call). ``options`` tunes the matcher (see
        :data:`repro.matching.framework.DEFAULT_OPTIONS`); ``tolerance``
        overrides the session's ``refresh_age`` for this query.
        """
        graph = self.bind(sql) if isinstance(sql, str) else sql
        return self._rewrite_bound(graph, options=options, tolerance=tolerance)

    def rewrite_graph(self, graph: QueryGraph, tolerance=None) -> QueryGraph | None:
        """The rewritten graph for ``graph``, or None when nothing matches."""
        result = self._rewrite_bound(graph, tolerance=tolerance)
        return result.graph if result is not None else None

    def _rewrite_bound(
        self, graph: QueryGraph, options: dict | None = None, tolerance=None
    ):
        """The matching fast path: staleness gate + index pruning +
        decision cache around :func:`repro.rewrite.rewriter.rewrite_query`."""
        from repro.rewrite.cache import CachedStep, CacheEntry, options_key
        from repro.rewrite.index import filter_fresh
        from repro.rewrite.rewriter import rewrite_query

        if tolerance is None:
            tolerance = self.refresh_age
        # Match-phase gate: a deadline that already expired (during
        # parse/bind) or a triggered token stops matching before the
        # navigator starts work it cannot afford. Raises
        # MatchBudgetExceeded, which the sandbox turns into base-table
        # execution — never an error.
        budget = governor_scope.current()
        if budget is not None:
            budget.enter_match()
        stats = self._rewrite_stats
        stats.queries += 1
        # Capture the decision-cache epoch BEFORE matching. Any catalog
        # mutation that lands while this decision is in flight bumps the
        # counter, so the entry stored below carries a stale epoch and is
        # invalidated on its first lookup instead of replaying a rewrite
        # against a dropped (or freshly altered) summary set.
        epoch = self._rewrite_epoch
        summaries = filter_fresh(
            self.enabled_summary_tables(), tolerance, stats=stats,
            log=self._delta_log,
        )
        admissible = frozenset(s.name.lower() for s in summaries)
        use_cache = self._fast_path_cache and self._rewrite_cache.maxsize > 0
        key = None
        if use_cache:
            key = (fingerprint(graph), options_key(options), tolerance.key)
            entry = self._rewrite_cache.lookup(
                key, epoch, admissible, stats=stats
            )
            if entry is not None:
                if entry.steps is None:
                    stats.cache_negative_hits += 1
                    t = _trace.ACTIVE
                    if t is not None:
                        self._trace_cache_hit(t, admissible, steps=None)
                    return None
                replayed = self._replay_rewrite(graph, entry, admissible)
                if replayed is not None:
                    stats.cache_hits += 1
                    t = _trace.ACTIVE
                    if t is not None:
                        self._trace_cache_hit(t, admissible, steps=entry.steps)
                    return replayed
                stats.cache_replay_failures += 1
            stats.cache_misses += 1
        # Circuit breaker: a shape that repeatedly timed out during
        # matching skips the navigator for a cool-down. The fingerprint
        # must be taken *before* rewrite_query mutates the graph in
        # place; reuse the cache key's when available, and skip the
        # extra hash entirely on the ungoverned, breaker-idle path.
        breaker = self.governor.breaker
        shape = key[0] if key is not None else None
        if shape is None and (budget is not None or breaker.active):
            shape = fingerprint(graph)
        if budget is not None:
            budget.fingerprint = shape
        if breaker.active and breaker.should_skip(shape):
            self.governor.note_breaker_skip()
            self.last_governor_event = (
                "circuit breaker open: match skipped for this query shape"
            )
            t = _trace.ACTIVE
            if t is not None:
                for summary in summaries:
                    t.verdict(
                        summary.name, "circuit-open",
                        "match skipped during breaker cool-down",
                    )
            return None
        result = rewrite_query(
            graph,
            summaries,
            options=options,
            stats=stats,
            prune=self._fast_path_index,
        )
        if shape is not None:
            # The match phase completed: this shape is healthy.
            breaker.record_success(shape)
        if use_cache:
            steps = None
            if result is not None:
                steps = tuple(
                    CachedStep(
                        summary_name=step.summary.name.lower(),
                        subsumee_index=step.subsumee_index,
                        chain=tuple(step.match.chain),
                        column_map=tuple(sorted(step.match.column_map.items())),
                        pattern=step.match.pattern,
                    )
                    for step in result.applied
                )
            self._rewrite_cache.store(
                key, CacheEntry(epoch, admissible, steps)
            )
            stats.cache_stores += 1
        return result

    def _trace_cache_hit(self, t, admissible: frozenset[str], steps) -> None:
        """Record per-summary ``cache-hit`` verdicts so warm queries never
        show an empty match table (the navigator did not run, but the
        cached decision still names each admissible summary's outcome)."""
        replayed = {step.summary_name: step for step in steps} if steps else {}
        for key in sorted(admissible):
            summary = self.summary_tables.get(key)
            name = summary.name if summary is not None else key
            step = replayed.get(key)
            if step is not None:
                t.verdict(
                    name, "cache-hit",
                    "decision cache replayed the prior match",
                    applied=True, pattern=step.pattern,
                )
            elif steps is None:
                t.verdict(
                    name, "cache-hit",
                    "cached decision: no rewrite applies to this query shape",
                )
            else:
                t.verdict(
                    name, "cache-hit",
                    "cached decision chose another summary",
                )

    def _replay_rewrite(
        self, graph: QueryGraph, entry: CacheEntry, admissible: frozenset[str]
    ):
        """Re-apply a cached positive decision to a freshly bound graph.

        The fingerprint match guarantees ``graph`` enumerates its boxes
        exactly as the cold-path graph did, so each step's recorded box
        index addresses the same (structurally identical) subsumee; the
        cached compensation chains are templates that ``apply_match``
        clones, never mutates. Any inconsistency falls back to the cold
        path by returning None.
        """
        from repro.matching.framework import MatchResult
        from repro.rewrite.rewriter import (
            AppliedRewrite,
            RewriteResult,
            apply_match,
        )

        applied = []
        try:
            for step in entry.steps:
                summary = self.summary_tables.get(step.summary_name)
                if (
                    summary is None
                    or not summary.enabled
                    or step.summary_name not in admissible
                ):
                    return None
                boxes = graph.boxes()
                if not 0 <= step.subsumee_index < len(boxes):
                    return None
                match = MatchResult(
                    subsumee=boxes[step.subsumee_index],
                    subsumer=summary.graph.root,
                    chain=list(step.chain),
                    column_map=dict(step.column_map),
                    pattern=step.pattern,
                )
                apply_match(graph, match, summary)
                applied.append(AppliedRewrite(summary, match, step.subsumee_index))
            graph.validate()
        except ReproError:
            return None
        return RewriteResult(graph, applied)

    # ------------------------------------------------------------------
    # Observability: match tracing and the slow-query log
    # ------------------------------------------------------------------
    def set_tracing(self, enabled: bool) -> None:
        """Toggle per-query match tracing (the CLI's ``\\trace on|off``).

        While enabled, every executed SELECT records a
        :class:`repro.obs.trace.MatchTrace` into a bounded ring buffer
        (:attr:`trace_buffer`); when disabled (the default) the tracing
        hooks are a single ``is not None`` test — no allocation."""
        self._tracing = bool(enabled)

    @property
    def tracing(self) -> bool:
        return self._tracing

    @property
    def trace_buffer(self) -> TraceBuffer:
        """The ring buffer of recently finished traces (newest last)."""
        return self._trace_buffer

    @property
    def last_trace(self):
        """The most recent finished trace, or None."""
        return self._trace_buffer.last

    def set_slow_query_threshold(self, threshold_ms: float | None) -> None:
        """``SET SLOW QUERY <ms>`` / ``OFF`` as a library call."""
        self.slow_query_ms = threshold_ms

    # ------------------------------------------------------------------
    # Fast-path introspection and control
    # ------------------------------------------------------------------
    def rewrite_stats(self) -> dict[str, int]:
        """Cumulative matching fast-path counters (see
        :class:`repro.rewrite.cache.RewriteStats`) merged with the
        deferred-refresh subsystem's counters: ``pending_deltas`` (a
        gauge — staged delta batches summed over deferred summaries),
        ``refreshes_applied``, ``fallback_recomputes``."""
        stats = self._rewrite_stats.as_dict()
        stats["pending_deltas"] = sum(
            summary.refresh.pending_deltas
            for summary in self.summary_tables.values()
        )
        stats["refreshes_applied"] = self._scheduler.refreshes_applied
        stats["fallback_recomputes"] = self._scheduler.fallback_recomputes
        stats["refresh_retries"] = self._scheduler.retries_scheduled
        stats["refresh_quarantines"] = self._scheduler.quarantines
        stats["quarantined_summaries"] = sum(
            1
            for summary in self.summary_tables.values()
            if summary.refresh.quarantined
        )
        return stats

    def reset_rewrite_stats(self) -> None:
        self._rewrite_stats.reset()
        self._scheduler.refreshes_applied = 0
        self._scheduler.fallback_recomputes = 0
        self._scheduler.batches_applied = 0

    def configure_fast_path(
        self, index: bool | None = None, cache: bool | None = None
    ) -> None:
        """Enable/disable fast-path layers (for benchmarks and ablation).

        ``index`` toggles AST signature pruning (falling back to the bare
        base-table-overlap check); ``cache`` toggles the rewrite decision
        cache (the cache is cleared when disabled).
        """
        if index is not None:
            self._fast_path_index = index
        if cache is not None:
            self._fast_path_cache = cache
            if not cache:
                self._rewrite_cache.clear()

    # ------------------------------------------------------------------
    # Summary tables
    # ------------------------------------------------------------------
    def create_summary_table(
        self,
        name: str,
        sql: str,
        use_summary_tables: bool = False,
        refresh_mode: str = "immediate",
    ) -> "SummaryTable":
        """Define and materialize an AST from its defining query.

        With ``use_summary_tables=True`` the materialization itself is
        rewritten over existing (fresh) summary tables — building a
        coarse rollup from a fine one instead of from the fact table.
        ``refresh_mode`` is ``"immediate"`` (maintained synchronously
        with every base-table change) or ``"deferred"`` (changes are
        staged in the delta log and applied by the refresh scheduler).
        """
        from repro.asts.definition import SummaryTable
        from repro.refresh.policy import RefreshState

        with self._catalog_lock:
            if self.catalog.has_table(name):
                raise CatalogError(f"name {name!r} is already a table")
            graph = self.bind(sql, label="A")
            execution_graph = graph
            if use_summary_tables and self.summary_tables:
                # Rewrite the bound graph in place; only when a rewrite
                # actually applied does the pristine definition graph need
                # to be re-bound (the common no-match path binds exactly
                # once). Sandboxed like query execution: a rewrite failure
                # falls back to materializing from the base tables.
                try:
                    rewritten = self.rewrite_graph(graph)
                except Exception as error:
                    self._rewrite_stats.rewrite_errors += 1
                    self.last_rewrite_error = f"{type(error).__name__}: {error}"
                    rewritten = None
                    graph = self.bind(sql, label="A")
                    execution_graph = graph
                if rewritten is not None:
                    execution_graph = rewritten
                    graph = self.bind(sql, label="A")
            data = self.execute_graph(execution_graph)
            schema = _schema_from_result(name, graph, data)
            summary = SummaryTable(
                name=name,
                sql=sql,
                graph=graph,
                schema=schema,
                table=Table(data.columns, data.rows),
                refresh=RefreshState(
                    mode=refresh_mode, last_refresh_lsn=self._delta_log.lsn
                ),
            )
            summary.stats["rows"] = float(len(data))
            summary.stats["base_rows"] = float(
                sum(
                    len(self.tables[t])
                    for t in graph.base_tables()
                    if t in self.tables
                )
            )
            self.catalog.add_table(schema)
            self.tables[name.lower()] = summary.table
            self._register_summary(summary)
            return summary

    def _register_summary(self, summary: "SummaryTable") -> None:
        """Register a materialized summary for matching: store it, index
        its signature, and invalidate cached rewrite decisions. Used by
        :meth:`create_summary_table` and by persistence reload."""
        self.summary_tables[summary.name.lower()] = summary
        self._summary_index.register(summary)
        self._bump_rewrite_epoch()

    def drop_summary_table(self, name: str) -> None:
        # The epoch bump happens strictly AFTER the structures change
        # (and the decision path captures its epoch strictly BEFORE
        # matching), so a concurrent query either sees the old epoch —
        # and its cached decision is invalidated on the next lookup — or
        # the new one with the summary already gone. Its executor runs
        # against the pinned table objects either way (execute_graph's
        # snapshot + overlay).
        with self._catalog_lock:
            key = name.lower()
            if key not in self.summary_tables:
                raise CatalogError(f"no summary table named {name!r}")
            del self.summary_tables[key]
            del self.tables[key]
            self.catalog.drop_table(name)
            self._summary_index.unregister(name)
            self._prune_delta_log()
            self._bump_rewrite_epoch()

    def refresh_summary_tables(self, names: Iterable[str] | None = None) -> None:
        """Recompute summary tables from the base data.

        ``names`` restricts the refresh to the given summary tables (so
        one stale AST can be refreshed without recomputing them all);
        ``None`` keeps the historical refresh-everything behavior.
        Refreshed deferred summaries become fully fresh: their staleness
        record is cleared and consumed delta-log batches are pruned.
        """
        # Preempt a background refresh of the same summaries: a manual
        # REFRESH must never block behind a stuck worker pass — the
        # worker yields at its next cooperative tick, flags the summary
        # for recompute, and this full recompute then satisfies it.
        if names is not None:
            names = list(names)
        self._scheduler.interrupt(names)
        with self._catalog_lock, self._maintenance_lock:
            if names is None:
                targets = list(self.summary_tables.values())
            else:
                targets = []
                for name in names:
                    key = name.lower()
                    if key not in self.summary_tables:
                        raise CatalogError(f"no summary table named {name!r}")
                    targets.append(self.summary_tables[key])
            for summary in targets:
                data = self.execute_graph(summary.graph)
                summary.table.rows[:] = data.rows
                summary.stats["rows"] = float(len(data))
                summary.refresh.pending_deltas = 0
                summary.refresh.last_refresh_lsn = self._delta_log.lsn
                # A successful full refresh re-admits a quarantined
                # summary: its contents are trustworthy again, and its
                # failure history restarts from zero.
                if summary.refresh.quarantined:
                    summary.refresh.release_quarantine()
                    _events.emit("summary.readmit", summary=summary.name)
                self._scheduler.reset_attempts(summary.name)
            self._prune_delta_log()
            self._bump_rewrite_epoch()

    def set_summary_table_enabled(self, name: str, enabled: bool = True) -> None:
        """Toggle a summary table's availability for matching.

        (Assigning ``summary.enabled`` directly also works — the decision
        cache validates the enabled set per query — but this entry point
        additionally bumps the epoch, keeping the invalidation explicit.)
        """
        with self._catalog_lock:
            key = name.lower()
            if key not in self.summary_tables:
                raise CatalogError(f"no summary table named {name!r}")
            self.summary_tables[key].enabled = enabled
            self._bump_rewrite_epoch()

    def quarantine_summary(self, name: str, reason: str) -> None:
        """Exclude a summary table from rewrite routing entirely.

        Called by the refresh scheduler after its retry budget is
        exhausted and by :func:`repro.engine.persist.verify_database`
        when a snapshot cannot be rebuilt. The epoch bump (plus the
        admissible-set check) invalidates any cached decision that used
        the summary; a successful :meth:`refresh_summary_tables` on the
        name re-admits it. Unknown names are ignored — the summary may
        have been dropped while its failure was in flight.
        """
        with self._maintenance_lock:
            summary = self.summary_tables.get(name.lower())
            if summary is None:
                return
            summary.refresh.quarantine(reason)
            _events.emit("summary.quarantine", summary=summary.name,
                         reason=reason)
            # Batches staged only for this summary are now dead weight —
            # re-admission recomputes from base tables.
            self._prune_delta_log()
            self._bump_rewrite_epoch()

    def quarantined_summary_tables(self) -> list["SummaryTable"]:
        return [
            s for s in self.summary_tables.values() if s.refresh.quarantined
        ]

    def _bump_rewrite_epoch(self) -> None:
        self._rewrite_epoch += 1

    @property
    def rewrite_epoch(self) -> int:
        """Monotonic counter bumped by every catalog mutation; anything
        derived from binding against the catalog (rewrite decisions,
        fingerprints) is valid only while this value is unchanged."""
        return self._rewrite_epoch

    def enabled_summary_tables(self) -> list["SummaryTable"]:
        return [s for s in self.summary_tables.values() if s.enabled]

    def deferred_summary_tables(self) -> list["SummaryTable"]:
        return [
            s for s in self.summary_tables.values() if s.refresh.is_deferred
        ]

    # ------------------------------------------------------------------
    # Ingest with deferred maintenance
    # ------------------------------------------------------------------
    def insert_rows(self, table_name: str, rows: Iterable[Row]):
        """Insert rows, maintaining REFRESH IMMEDIATE summaries inline
        and staging the change for REFRESH DEFERRED ones.

        The base table is always updated synchronously — only summary
        maintenance is deferred, which is what decouples ingest latency
        from the number of registered summaries. Returns the
        :class:`repro.asts.maintenance.MaintenanceReport`.
        """
        return self._ingest(table_name, rows, sign=+1)

    def delete_rows(self, table_name: str, rows: Iterable[Row]):
        """Exact-row delete with the same immediate/deferred split as
        :meth:`insert_rows`."""
        return self._ingest(table_name, rows, sign=-1)

    def _ingest(self, table_name: str, rows: Iterable[Row], sign: int):
        from repro.asts.maintenance import maintain_delete, maintain_insert

        rows = [tuple(row) for row in rows]
        maintain = maintain_insert if sign > 0 else maintain_delete
        with self._maintenance_lock:
            immediate = [
                s
                for s in self.summary_tables.values()
                if not s.refresh.is_deferred
            ]
            report = maintain(self, table_name, rows, summaries=immediate)
            stale = self._stage_deferred(table_name, rows, sign, report)
        # Notify outside the maintenance lock: the worker needs the lock
        # to drain a full queue, so notifying under it could deadlock.
        if stale:
            self._scheduler.notify(stale)
        return report

    def _stage_deferred(
        self, table_name: str, rows: list[Row], sign: int, report
    ) -> list[str]:
        """Log the change for affected deferred summaries; returns their
        names (the scheduler's refresh work list).

        Quarantined summaries are skipped: re-admission always goes
        through a full recompute, so staging deltas for them would only
        pin the log. If the delta log itself fails to accept the change,
        ingest degrades to recomputing the affected summaries inline —
        slower, but never silently wrong.
        """
        if not rows:
            return []
        key = self.catalog.table(table_name).name.lower()
        affected = []
        for summary in self.deferred_summary_tables():
            if summary.refresh.quarantined:
                report.unaffected.append(summary.name)
            elif key in summary.base_tables():
                affected.append(summary)
                report.deferred.append(summary.name)
            else:
                report.unaffected.append(summary.name)
        if not affected:
            # No batch to stage, but the change must still advance the
            # table's high-water LSN: the staleness gate and the query
            # server's result cache key their freshness checks on it.
            self._delta_log.note_write(key)
            return []
        try:
            self._delta_log.append(key, rows, sign)
        except Exception as error:
            report.deferred.clear()
            for summary in affected:
                data = self.execute_graph(summary.graph)
                summary.table.rows[:] = data.rows
                summary.stats["rows"] = float(len(data))
                summary.refresh.pending_deltas = 0
                summary.refresh.last_refresh_lsn = self._delta_log.lsn
                report.recomputed[summary.name] = "delta log append failed"
            self._scheduler.errors.append(
                f"delta log append failed ({error}); "
                f"recomputed {', '.join(s.name for s in affected)} inline"
            )
            self._bump_rewrite_epoch()
            return []
        for summary in affected:
            summary.refresh.pending_deltas += 1
        # No epoch bump: cached decisions made under a tolerance that the
        # new staleness violates are invalidated by the admissible-set
        # check; decisions under looser tolerances stay valid.
        return [summary.name for summary in affected]

    # ------------------------------------------------------------------
    # Deferred-refresh introspection and control
    # ------------------------------------------------------------------
    @property
    def delta_log(self):
        """The staged-change log (see :class:`repro.refresh.log.DeltaLog`)."""
        return self._delta_log

    @property
    def refresh_scheduler(self):
        """The background refresh worker
        (:class:`repro.refresh.scheduler.RefreshScheduler`)."""
        return self._scheduler

    def set_refresh_age(self, max_pending: int | None) -> None:
        """Session-level ``SET REFRESH AGE`` (None = ANY)."""
        from repro.refresh.policy import RefreshAge

        self.refresh_age = RefreshAge(max_pending)

    def drain_refresh(self) -> None:
        """Apply every staged delta and block until all deferred
        summaries are fully fresh (deterministic test/benchmark hook)."""
        stale = [
            summary.name
            for summary in self.deferred_summary_tables()
            if summary.refresh.is_stale
        ]
        if stale:
            self._scheduler.notify(stale)
        self._scheduler.drain()

    def close(self, force: bool = False) -> None:
        """Stop the background refresh worker and the executor pool.

        By default queued work is finished first; ``force=True`` cancels
        the in-flight refresh cooperatively (its summary is flagged for
        a full recompute on the next refresh) so ``close`` never blocks
        behind a stuck query.
        """
        self._scheduler.stop(cancel_inflight=force)
        pool = self._executor_pool
        self._executor_pool = None
        self._executor_parallel = None
        if pool is not None:
            pool.shutdown(wait=True)

    def refresh_status(self) -> list[dict]:
        """Per-summary refresh mode and staleness, for the CLI and tests."""
        status = []
        for summary in self.summary_tables.values():
            state = summary.refresh
            entry = {
                "name": summary.name,
                "mode": state.mode,
                "pending_deltas": state.pending_deltas,
                "last_refresh_lsn": state.last_refresh_lsn,
            }
            if state.quarantined:
                entry["quarantined"] = True
                entry["quarantine_reason"] = state.quarantine_reason
            reason = self._scheduler.last_fallbacks.get(summary.name)
            if reason:
                entry["last_fallback"] = reason
            status.append(entry)
        return status

    def _prune_delta_log(self) -> None:
        """Drop delta batches every deferred summary has consumed.

        Quarantined summaries don't pin the log: their re-admission path
        is a full recompute, which needs no staged batches.
        """
        deferred = [
            s
            for s in self.deferred_summary_tables()
            if not s.refresh.quarantined
        ]
        if not deferred:
            self._delta_log.prune(self._delta_log.lsn)
            return
        self._delta_log.prune(
            min(s.refresh.last_refresh_lsn for s in deferred)
        )


def _describe_fast_path(delta: dict[str, int]) -> str:
    """One-line rendering of per-statement fast-path counter deltas."""
    considered = delta["candidates_considered"]
    pruned = delta["candidates_pruned"]
    parts = [f"candidates: {considered} considered, {pruned} pruned by index"]
    if delta["cache_hits"]:
        parts.append("decision cache: hit (rewrite replayed)")
    elif delta["cache_negative_hits"]:
        parts.append("decision cache: hit (no-rewrite)")
    elif delta["cache_misses"]:
        parts.append("decision cache: miss")
    else:
        parts.append("decision cache: off")
    parts.append(f"matches attempted: {delta['matches_attempted']}")
    if delta.get("stale_rejections"):
        parts.append(
            f"stale summaries rejected: {delta['stale_rejections']} "
            "(raise REFRESH AGE or drain the refresh queue)"
        )
    if delta.get("quarantined_rejections"):
        parts.append(
            f"quarantined summaries excluded: {delta['quarantined_rejections']} "
            "(REFRESH SUMMARY TABLE re-admits)"
        )
    if delta.get("rewrite_errors"):
        parts.append(
            f"rewrite errors sandboxed: {delta['rewrite_errors']} "
            "(query fell back to base tables)"
        )
    return "; ".join(parts)


def _summary_overlay(result) -> dict[str, "Table"] | None:
    """``{summary name: table}`` for the summaries a rewrite applied —
    the executor's shield against a concurrent ``DROP SUMMARY TABLE``."""
    if not result.applied:
        return None
    return {
        step.summary.name.lower(): step.summary.table
        for step in result.applied
    }


def _maintenance_status(prefix: str, report) -> str:
    notes = []
    if report.incremental:
        notes.append(f"incremental: {', '.join(report.incremental)}")
    if report.recomputed:
        notes.append(f"recomputed: {', '.join(report.recomputed)}")
    if report.deferred:
        notes.append(f"deferred: {', '.join(report.deferred)}")
    if not notes:
        return prefix
    return f"{prefix} ({'; '.join(notes)})"


def _schema_from_result(name: str, graph: QueryGraph, data: Table) -> TableSchema:
    """Derive a TableSchema for a materialized AST from its root box."""
    columns = []
    for qcl in graph.root.outputs:
        dtype = _infer_column_type(data, qcl.name)
        columns.append(Column(qcl.name, dtype, nullable=qcl.nullable))
    return TableSchema(name, columns)


def _infer_column_type(data: Table, column: str) -> DataType:
    for value in data.column_values(column):
        if value is None:
            continue
        inferred = infer_literal_type(value)
        if inferred is not None:
            return inferred
    # Column is empty or all-NULL; the concrete type does not matter.
    return DataType.FLOAT


try:  # circular-import-free type hints for tooling
    from repro.asts.definition import SummaryTable  # noqa: E402
except ImportError:  # pragma: no cover
    pass
