"""The `Database` facade — the library's main entry point.

Ties together the catalog, the table store, the executor, summary-table
management, and (lazily, to keep layering clean) the matcher/rewriter::

    db = Database(credit_card_catalog())
    db.load("Trans", rows)
    db.create_summary_table("AST1", "SELECT faid, flid, ... GROUP BY ...")
    result = db.execute(my_query)                 # rewritten automatically
    raw = db.execute(my_query, use_summary_tables=False)
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import Catalog, Column, TableSchema
from repro.catalog.types import DataType, infer_literal_type
from repro.engine.executor import Executor
from repro.engine.table import Row, Table
from repro.errors import CatalogError, ReproError
from repro.qgm.boxes import QueryGraph
from repro.qgm.build import build_graph


class Database:
    """An in-memory database with automatic summary tables."""

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog or Catalog()
        self.tables: dict[str, Table] = {}
        self.summary_tables: dict[str, "SummaryTable"] = {}
        for schema in self.catalog.tables.values():
            self.tables[schema.name.lower()] = Table.from_schema(schema)

    # ------------------------------------------------------------------
    # Data definition / loading
    # ------------------------------------------------------------------
    def add_table(self, schema: TableSchema) -> None:
        """Register a new base table (empty until loaded)."""
        self.catalog.add_table(schema)
        self.tables[schema.name.lower()] = Table.from_schema(schema)

    def load(self, table_name: str, rows: Iterable[Row]) -> int:
        """Append validated rows to a base table; returns the new count.

        Loading does *not* refresh summary tables — call
        :meth:`refresh_summary_tables` or use
        :func:`repro.asts.maintenance.apply_insert` for incremental
        maintenance.
        """
        schema = self.catalog.table(table_name)
        table = self.tables[schema.name.lower()]
        table.extend_checked(rows, schema)
        return len(table)

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"no table named {name!r}")
        return self.tables[key]

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def bind(self, sql: str, label: str = "Q") -> QueryGraph:
        """Parse + bind SQL against this database's catalog."""
        return build_graph(sql, self.catalog, label=label)

    def execute(self, sql: str, use_summary_tables: bool = True) -> Table:
        """Run a query, rewriting it over summary tables when possible."""
        graph = self.bind(sql)
        if use_summary_tables and self.summary_tables:
            graph = self.rewrite_graph(graph) or graph
        return self.execute_graph(graph)

    def execute_graph(self, graph: QueryGraph) -> Table:
        return Executor(self.tables).run(graph)

    def run_sql(self, sql: str, use_summary_tables: bool = True):
        """Execute one statement of any supported kind (SELECT, CREATE
        TABLE, CREATE SUMMARY TABLE, DROP SUMMARY TABLE, INSERT, DELETE,
        EXPLAIN). Returns a :class:`~repro.engine.table.Table` for
        SELECT/EXPLAIN, otherwise a status string."""
        from repro.sql.ast import SelectStatement, UnionAll
        from repro.sql.statements import (
            CreateSummaryTable,
            CreateTable,
            DeleteValues,
            DropSummaryTable,
            Explain,
            InsertValues,
            parse_statement,
        )

        statement = parse_statement(sql)
        if isinstance(statement, (SelectStatement, UnionAll)):
            from repro.qgm.build import build_graph

            graph = build_graph(statement, self.catalog)
            if use_summary_tables and self.summary_tables:
                graph = self.rewrite_graph(graph) or graph
            return self.execute_graph(graph)
        if isinstance(statement, Explain):
            return self._explain(statement.sql)
        if isinstance(statement, CreateTable):
            self._apply_create_table(statement)
            return f"table {statement.name} created"
        if isinstance(statement, CreateSummaryTable):
            summary = self.create_summary_table(statement.name, statement.sql)
            return (
                f"summary table {summary.name} created "
                f"({summary.row_count} rows)"
            )
        if isinstance(statement, DropSummaryTable):
            self.drop_summary_table(statement.name)
            return f"summary table {statement.name} dropped"
        if isinstance(statement, InsertValues):
            from repro.asts.maintenance import maintain_insert

            report = maintain_insert(self, statement.table, statement.rows)
            return _maintenance_status(
                f"{len(statement.rows)} row(s) inserted into {statement.table}",
                report,
            )
        if isinstance(statement, DeleteValues):
            from repro.asts.maintenance import maintain_delete

            report = maintain_delete(self, statement.table, statement.rows)
            return _maintenance_status(
                f"{len(statement.rows)} row(s) deleted from {statement.table}",
                report,
            )
        raise ReproError(f"unsupported statement {statement!r}")

    def run_script(self, script: str) -> list:
        """Run a ';'-separated script; returns one result per statement."""
        from repro.sql.statements import split_statements

        return [self.run_sql(statement) for statement in split_statements(script)]

    def _apply_create_table(self, statement) -> None:
        from repro.catalog.schema import (
            Column,
            ForeignKeyConstraint,
            TableSchema,
            UniqueKey,
        )

        schema = TableSchema(
            statement.name,
            [Column(c.name, c.dtype, c.nullable) for c in statement.columns],
            keys=[UniqueKey(k.columns, k.is_primary) for k in statement.keys],
        )
        self.add_table(schema)
        try:
            for fk in statement.foreign_keys:
                self.catalog.add_foreign_key(
                    ForeignKeyConstraint(
                        statement.name, fk.columns, fk.parent_table, fk.parent_columns
                    )
                )
        except Exception:
            self.catalog.drop_table(statement.name)
            del self.tables[statement.name.lower()]
            raise

    def explain(self, sql: str) -> str:
        """EXPLAIN output: the QGM graph, the matching decision, and the
        rewritten SQL/graph when a summary table applies."""
        return self._explain(sql)

    def _explain(self, sql: str):
        """EXPLAIN output: the QGM graph and the rewrite decision."""
        from repro.qgm.display import render_graph

        lines = ["-- query graph --", render_graph(self.bind(sql))]
        result = self.rewrite(sql)
        if result is None:
            lines.append("-- no summary-table rewrite applies --")
        else:
            lines.append("-- rewrite --")
            lines.append(result.explain())
            lines.append("-- rewritten SQL --")
            lines.append(result.sql)
            lines.append("-- rewritten graph --")
            lines.append(render_graph(result.graph))
        return "\n".join(lines)

    def rewrite(self, sql: str, options: dict | None = None):
        """Attempt a summary-table rewrite; returns a
        :class:`repro.rewrite.rewriter.RewriteResult` or None.

        ``options`` tunes the matcher (see
        :data:`repro.matching.framework.DEFAULT_OPTIONS`).
        """
        from repro.rewrite.rewriter import rewrite_query

        graph = self.bind(sql)
        return rewrite_query(graph, self.enabled_summary_tables(), options=options)

    def rewrite_graph(self, graph: QueryGraph) -> QueryGraph | None:
        """The rewritten graph for ``graph``, or None when nothing matches."""
        from repro.rewrite.rewriter import rewrite_query

        result = rewrite_query(graph, self.enabled_summary_tables())
        return result.graph if result is not None else None

    # ------------------------------------------------------------------
    # Summary tables
    # ------------------------------------------------------------------
    def create_summary_table(
        self, name: str, sql: str, use_summary_tables: bool = False
    ) -> "SummaryTable":
        """Define and materialize an AST from its defining query.

        With ``use_summary_tables=True`` the materialization itself is
        rewritten over existing (fresh) summary tables — building a
        coarse rollup from a fine one instead of from the fact table.
        """
        from repro.asts.definition import SummaryTable

        if self.catalog.has_table(name):
            raise CatalogError(f"name {name!r} is already a table")
        graph = self.bind(sql, label="A")
        execution_graph = graph
        if use_summary_tables and self.summary_tables:
            execution_graph = self.rewrite_graph(self.bind(sql, label="A")) or graph
        data = self.execute_graph(execution_graph)
        schema = _schema_from_result(name, graph, data)
        summary = SummaryTable(
            name=name,
            sql=sql,
            graph=graph,
            schema=schema,
            table=Table(data.columns, data.rows),
        )
        summary.stats["rows"] = float(len(data))
        summary.stats["base_rows"] = float(
            sum(len(self.tables[t]) for t in graph.base_tables() if t in self.tables)
        )
        self.catalog.add_table(schema)
        self.tables[name.lower()] = summary.table
        self.summary_tables[name.lower()] = summary
        return summary

    def drop_summary_table(self, name: str) -> None:
        key = name.lower()
        if key not in self.summary_tables:
            raise CatalogError(f"no summary table named {name!r}")
        del self.summary_tables[key]
        del self.tables[key]
        self.catalog.drop_table(name)

    def refresh_summary_tables(self) -> None:
        """Recompute every summary table from the base data."""
        for summary in self.summary_tables.values():
            data = self.execute_graph(summary.graph)
            summary.table.rows[:] = data.rows
            summary.stats["rows"] = float(len(data))

    def enabled_summary_tables(self) -> list["SummaryTable"]:
        return [s for s in self.summary_tables.values() if s.enabled]


def _maintenance_status(prefix: str, report) -> str:
    notes = []
    if report.incremental:
        notes.append(f"incremental: {', '.join(report.incremental)}")
    if report.recomputed:
        notes.append(f"recomputed: {', '.join(report.recomputed)}")
    if not notes:
        return prefix
    return f"{prefix} ({'; '.join(notes)})"


def _schema_from_result(name: str, graph: QueryGraph, data: Table) -> TableSchema:
    """Derive a TableSchema for a materialized AST from its root box."""
    columns = []
    for qcl in graph.root.outputs:
        dtype = _infer_column_type(data, qcl.name)
        columns.append(Column(qcl.name, dtype, nullable=qcl.nullable))
    return TableSchema(name, columns)


def _infer_column_type(data: Table, column: str) -> DataType:
    for value in data.column_values(column):
        if value is None:
            continue
        inferred = infer_literal_type(value)
        if inferred is not None:
            return inferred
    # Column is empty or all-NULL; the concrete type does not matter.
    return DataType.FLOAT


try:  # circular-import-free type hints for tooling
    from repro.asts.definition import SummaryTable  # noqa: E402
except ImportError:  # pragma: no cover
    pass
