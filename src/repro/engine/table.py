"""In-memory relational tables, stored column-wise.

A :class:`Table` is columnar: one :class:`ColumnStore` per column holds
the values (a typed ``array.array`` plus a null mask for numeric schema
columns, a plain Python list otherwise).  The batch executor reads the
column data directly (:meth:`Table.column_data`), which is what makes
vectorized filtering/joining/grouping possible; everything that predates
the columnar refactor — matching, maintenance, persistence — keeps using
the row-oriented API through :attr:`Table.rows`, a mutable sequence view
that materializes tuples on demand and writes through to the columns.

The benchmarks still measure the effect the paper's ASTs exploit — the
*amount of data scanned* — only now against a competent vectorized
baseline instead of a per-row interpreter (see docs/EXECUTOR.md).
"""

from __future__ import annotations

import datetime
import math
from array import array
from typing import Any, Iterable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.catalog.types import DataType, value_matches_type
from repro.errors import ExecutionError, TypeMismatchError

Row = tuple

#: 64-bit bounds for the typed INTEGER backend (array.array('q'))
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class ColumnStore:
    """One column's values: a typed array + null mask, or a plain list.

    Two backends:

    * *list* — ``values`` is a Python list with ``None`` inline for SQL
      NULL (``nulls is None``).  The default for strings, dates,
      booleans, and every intermediate/result table.
    * *typed* — ``values`` is an ``array.array`` (``'q'`` for INTEGER,
      ``'d'`` for FLOAT) and ``nulls`` is a per-row null mask
      (``bytearray``; 1 = NULL, the array slot holds a placeholder 0).
      Chosen by :meth:`Table.from_schema` for numeric columns — compact
      storage for the big base tables.

    A typed column *decays* to the list backend the moment a value that
    cannot round-trip exactly is written (a non-float into a FLOAT
    column, an out-of-64-bit-range int, a string after an ALTER-ish
    mutation) — values are never coerced, so row reads always return the
    exact Python objects that were stored.
    """

    __slots__ = ("values", "nulls", "_cache")

    def __init__(self, typecode: str | None = None):
        if typecode is None:
            self.values: Any = []
            self.nulls: bytearray | None = None
        else:
            self.values = array(typecode)
            self.nulls = None  # allocated lazily on the first NULL
        self._cache: list | None = None

    # -- backend predicates --------------------------------------------
    @property
    def is_typed(self) -> bool:
        return isinstance(self.values, array)

    def _fits(self, value: Any) -> bool:
        """Can ``value`` be stored in the typed backend without changing
        its type or value?  (NULL always fits — it goes in the mask.)"""
        if value is None:
            return True
        if self.values.typecode == "d":
            return isinstance(value, float)
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and _INT64_MIN <= value <= _INT64_MAX
        )

    def _decay(self) -> None:
        """Convert the typed backend to a plain list (exact values)."""
        self.values = self.data()
        self.nulls = None
        self._cache = None

    # -- element access ------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def get(self, index: int) -> Any:
        if self.nulls is not None and self.nulls[index]:
            return None
        value = self.values[index]
        return value

    def set(self, index: int, value: Any) -> None:
        self._cache = None
        if not self.is_typed:
            self.values[index] = value
            return
        if not self._fits(value):
            self._decay()
            self.values[index] = value
            return
        if value is None:
            if self.nulls is None:
                self.nulls = bytearray(len(self.values))
            self.nulls[index] = 1
            self.values[index] = 0
        else:
            if self.nulls is not None:
                self.nulls[index] = 0
            self.values[index] = value

    def append(self, value: Any) -> None:
        self._cache = None
        if not self.is_typed:
            self.values.append(value)
            return
        if not self._fits(value):
            self._decay()
            self.values.append(value)
            return
        if value is None:
            if self.nulls is None:
                self.nulls = bytearray(len(self.values))
            self.values.append(0)
            self.nulls.append(1)
        else:
            self.values.append(value)
            if self.nulls is not None:
                self.nulls.append(0)

    def extend(self, values: Iterable[Any]) -> None:
        self._cache = None
        if not self.is_typed:
            self.values.extend(values)
            return
        values = list(values)
        if all(map(self._fits, values)):
            has_null = any(value is None for value in values)
            if has_null and self.nulls is None:
                self.nulls = bytearray(len(self.values))
            if self.nulls is not None:
                self.nulls.extend(1 if v is None else 0 for v in values)
            self.values.extend(0 if v is None else v for v in values)
        else:
            self._decay()
            self.values.extend(values)

    def delete(self, index) -> None:
        self._cache = None
        del self.values[index]
        if self.nulls is not None:
            del self.nulls[index]

    def insert(self, index: int, value: Any) -> None:
        self._cache = None
        if self.is_typed and self._fits(value):
            if value is None:
                if self.nulls is None:
                    self.nulls = bytearray(len(self.values))
                self.values.insert(index, 0)
                self.nulls.insert(index, 1)
                return
            self.values.insert(index, value)
            if self.nulls is not None:
                self.nulls.insert(index, 0)
            return
        if self.is_typed:
            self._decay()
        self.values.insert(index, value)

    def clear(self) -> None:
        self._cache = None
        if self.is_typed:
            del self.values[:]
            self.nulls = None
        else:
            self.values.clear()

    # -- batch access (the executor's scan path) -----------------------
    def data(self) -> list:
        """The column as a plain Python list with ``None`` for NULL.

        For list-backed columns this *is* the storage (zero copy — the
        executor treats it as read-only); typed columns materialize once
        and cache until the next mutation.
        """
        if not self.is_typed:
            return self.values
        cached = self._cache
        if cached is not None:
            return cached
        if self.nulls is None:
            materialized = self.values.tolist()
        else:
            materialized = [
                None if null else value
                for value, null in zip(self.values, self.nulls)
            ]
        self._cache = materialized
        return materialized

    def null_count(self) -> int:
        if self.nulls is not None:
            return sum(self.nulls)
        if self.is_typed:
            return 0
        return sum(1 for value in self.values if value is None)

    def nbytes_estimate(self) -> int:
        """Estimated resident bytes of this column's storage.

        Typed columns are exact (array itemsize plus the null mask);
        list columns extrapolate from a small evenly spaced value sample
        — the memory broker charges order-of-magnitude estimates, not
        malloc truth.
        """
        if self.is_typed:
            nbytes = len(self.values) * self.values.itemsize
            if self.nulls is not None:
                nbytes += len(self.nulls)
            return nbytes + 64
        return estimate_values_nbytes(self.values)


#: schema types that get the compact typed backend
_TYPECODES = {DataType.INTEGER: "q", DataType.FLOAT: "d"}


class RowsView(Sequence):
    """A list-like, mutable view of a table's rows.

    Everything written before the columnar refactor treats
    ``table.rows`` as ``list[tuple]`` — iterating, appending, removing,
    indexing, and wholesale replacement via ``rows[:] = ...``.  This
    view keeps that contract over column-wise storage: reads zip the
    columns into tuples on demand, writes fan out to the columns.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "Table"):
        self._table = table

    # -- reads ---------------------------------------------------------
    def __len__(self) -> int:
        return self._table._nrows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._table._materialize_rows())

    def __getitem__(self, index):
        table = self._table
        if isinstance(index, slice):
            return self._table._materialize_rows()[index]
        if index < 0:
            index += table._nrows
        if not 0 <= index < table._nrows:
            raise IndexError("row index out of range")
        return tuple(store.get(index) for store in table._stores)

    def __eq__(self, other) -> bool:
        if isinstance(other, RowsView):
            other = list(other)
        if not isinstance(other, list):
            return NotImplemented
        return self._table._materialize_rows() == other

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self._table._materialize_rows())

    def count(self, row) -> int:
        return self._table._materialize_rows().count(tuple(row))

    def index(self, row, *args) -> int:
        return self._table._materialize_rows().index(tuple(row), *args)

    # -- writes --------------------------------------------------------
    def append(self, row: Row) -> None:
        self._table._append_row(tuple(row))

    def extend(self, rows: Iterable[Row]) -> None:
        self._table._extend_rows(rows)

    def insert(self, index: int, row: Row) -> None:
        table = self._table
        row = tuple(row)
        if len(row) != len(table._stores) and table._stores:
            raise ExecutionError(
                f"row has {len(row)} values, table has {len(table._stores)}"
            )
        for store, value in zip(table._stores, row):
            store.insert(index, value)
        table._nrows += 1
        table._bump()

    def remove(self, row: Row) -> None:
        try:
            position = self.index(tuple(row))
        except ValueError:
            raise ValueError(f"{row!r} not in rows") from None
        del self[position]

    def __setitem__(self, index, value) -> None:
        table = self._table
        if isinstance(index, slice):
            rows = [tuple(row) for row in value]
            if index == slice(None):  # rows[:] = ... (full replacement)
                table._replace_rows(rows)
                return
            materialized = table._materialize_rows()[:]
            materialized[index] = rows
            table._replace_rows(materialized)
            return
        if index < 0:
            index += table._nrows
        if not 0 <= index < table._nrows:
            raise IndexError("row assignment index out of range")
        row = tuple(value)
        if len(row) != len(table._stores):
            raise ExecutionError(
                f"row has {len(row)} values, table has {len(table._stores)}"
            )
        for store, cell in zip(table._stores, row):
            store.set(index, cell)
        table._bump()

    def __delitem__(self, index) -> None:
        table = self._table
        if isinstance(index, slice):
            removed = len(range(*index.indices(table._nrows)))
        else:
            if index < 0:
                index += table._nrows
            if not 0 <= index < table._nrows:
                raise IndexError("row index out of range")
            removed = 1
        for store in table._stores:
            store.delete(index)
        table._nrows -= removed
        table._bump()

    def clear(self) -> None:
        self._table._replace_rows([])

    def sort(self, *, key=None, reverse: bool = False) -> None:
        rows = self._table._materialize_rows()[:]
        rows.sort(key=key, reverse=reverse)
        self._table._replace_rows(rows)

    def copy(self) -> list[Row]:
        return self._table._materialize_rows()[:]


class Table:
    """Column names + column stores; ``rows`` is the compatibility view."""

    __slots__ = ("columns", "_stores", "_nrows", "_index", "_rows_view", "_rows_cache")

    def __init__(self, columns: Sequence[str], rows: Iterable[Row] = ()):
        self.columns = list(columns)
        self._index = {name: i for i, name in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise ExecutionError(f"duplicate column names: {self.columns}")
        self._stores = [ColumnStore() for _ in self.columns]
        self._nrows = 0
        self._rows_view = RowsView(self)
        self._rows_cache: list[Row] | None = None
        rows = rows if isinstance(rows, list) else list(rows)
        if rows:
            self._extend_rows(rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_schema(cls, schema: TableSchema, rows: Iterable[Row] = ()) -> "Table":
        table = cls(schema.column_names)
        table._stores = [
            ColumnStore(_TYPECODES.get(column.dtype)) for column in schema.columns
        ]
        table.extend_checked(rows, schema)
        return table

    @classmethod
    def from_columns(
        cls, columns: Sequence[str], data: Sequence[list], nrows: int | None = None
    ) -> "Table":
        """Wrap already-columnar data without a row round-trip.

        ``data`` holds one plain value list per column (``None`` for
        NULL); the lists are adopted, not copied — the executor's output
        path hands over freshly built lists.
        """
        table = cls(columns)
        if len(data) != len(table.columns):
            raise ExecutionError(
                f"{len(data)} columns of data for {len(table.columns)} names"
            )
        if nrows is None:
            nrows = len(data[0]) if data else 0
        for store, values in zip(table._stores, data):
            if len(values) != nrows:
                raise ExecutionError("ragged column data")
            store.values = values
        table._nrows = nrows
        return table

    def extend_checked(self, rows: Iterable[Row], schema: TableSchema) -> None:
        """Append rows, validating arity, types and nullability.

        Validation is column-wise per batch: the batch is transposed
        once, then each column is checked in a single pass (one
        nullability scan, one `isinstance` scan against the dtype's
        allowed runtime types) instead of dispatching
        ``value_matches_type`` per cell.  On failure the offending cell
        is located by a second scan — the error path can afford it.
        """
        rows = [tuple(row) for row in rows] if not isinstance(rows, list) else rows
        if not rows:
            return
        width = len(schema.columns)
        for row in rows:
            if len(row) != width:
                raise TypeMismatchError(
                    f"row has {len(row)} values, table {schema.name!r} has {width}"
                )
        transposed = list(zip(*rows)) if width else []
        for values, column in zip(transposed, schema.columns):
            if not column.nullable and None in values:
                raise TypeMismatchError(
                    f"NULL in non-nullable column {schema.name}.{column.name}"
                )
            allowed = _ALLOWED_TYPES[column.dtype]
            if column.dtype is DataType.INTEGER:
                ok = all(
                    v is None or (type(v) is not bool and isinstance(v, allowed))
                    for v in values
                )
            else:
                ok = all(v is None or isinstance(v, allowed) for v in values)
            if not ok:
                for value in values:
                    if not value_matches_type(value, column.dtype):
                        raise TypeMismatchError(
                            f"value {value!r} does not match "
                            f"{schema.name}.{column.name}: {column.dtype.value}"
                        )
        self.extend_trusted(rows, transposed)

    def extend_trusted(
        self, rows: list[Row], transposed: list[tuple] | None = None
    ) -> None:
        """Append rows that are already known valid (the loader validated
        them, or they were read back out of a validated table) — no
        per-value re-checks, one columnar append per column."""
        if not rows:
            return
        if transposed is None:
            width = len(self._stores)
            for row in rows:
                if len(row) != width:
                    raise ExecutionError(
                        f"row has {len(row)} values, table has {width}"
                    )
            transposed = list(zip(*rows)) if width else []
        for store, values in zip(self._stores, transposed):
            store.extend(values)
        self._nrows += len(rows)
        self._bump()

    # ------------------------------------------------------------------
    # Row-oriented compatibility API
    # ------------------------------------------------------------------
    @property
    def rows(self) -> RowsView:
        return self._rows_view

    def _materialize_rows(self) -> list[Row]:
        cached = self._rows_cache
        if cached is not None:
            return cached
        if not self._stores:
            materialized: list[Row] = [()] * self._nrows
        else:
            materialized = list(zip(*(store.data() for store in self._stores)))
        self._rows_cache = materialized
        return materialized

    def _replace_rows(self, rows: list[Row]) -> None:
        transposed = list(zip(*rows)) if rows else [()] * len(self._stores)
        for store, values in zip(self._stores, transposed):
            store.clear()
            store.extend(values)
        self._nrows = len(rows)
        self._bump()

    def _append_row(self, row: Row) -> None:
        if len(row) != len(self._stores):
            raise ExecutionError(
                f"row has {len(row)} values, table has {len(self._stores)}"
            )
        for store, value in zip(self._stores, row):
            store.append(value)
        self._nrows += 1
        self._bump()

    def _extend_rows(self, rows: Iterable[Row]) -> None:
        rows = [tuple(row) for row in rows]
        if not rows:
            return
        width = len(self._stores)
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row has {len(row)} values, table has {width}"
                )
        self.extend_trusted(rows)

    def _bump(self) -> None:
        """Invalidate row-materialization caches after any mutation."""
        self._rows_cache = None

    # ------------------------------------------------------------------
    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ExecutionError(
                f"no column {name!r}; have {self.columns}"
            ) from None

    def column_values(self, name: str) -> list[Any]:
        return list(self._stores[self.column_index(name)].data())

    def column_data(self, index: int) -> list[Any]:
        """The executor's scan path: column ``index`` as a plain value
        list (``None`` for NULL).  **Read-only** — list-backed columns
        return the storage itself, zero copy."""
        return self._stores[index].data()

    def columns_data(self) -> list[list[Any]]:
        """All columns as plain value lists (read-only; see
        :meth:`column_data`)."""
        return [store.data() for store in self._stores]

    def __len__(self) -> int:
        return self._nrows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._materialize_rows())

    # ------------------------------------------------------------------
    def sorted_rows(self) -> list[Row]:
        """Rows in a canonical order, for set-style comparison in tests."""
        return sorted(self._materialize_rows(), key=_row_sort_key)

    def sort_by(self, keys: list[tuple[str, bool]]) -> None:
        """In-place ORDER BY; NULLs sort last on ascending keys.

        Implemented as successive stable sorts, least-significant key
        first; each pass builds its key function exactly once (closing
        over the column index and direction) rather than re-deriving the
        lookup per comparison.
        """
        rows = self._materialize_rows()[:]
        for name, ascending in reversed(keys):
            rows.sort(
                key=_sort_key_for(self.column_index(name), ascending),
                reverse=not ascending,
            )
        self._replace_rows(rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self._materialize_rows()]

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering for examples and docs."""
        shown = self._materialize_rows()[:limit]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(self.columns)
        ]
        header = "  ".join(name.ljust(w) for name, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(value.ljust(w) for value, w in zip(row, widths))
            for row in cells
        ]
        footer = [] if self._nrows <= limit else [f"... ({self._nrows} rows)"]
        return "\n".join([header, rule, *body, *footer])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.columns}, {self._nrows} rows)"

    def nbytes_estimate(self) -> int:
        """Estimated resident bytes of the whole table (see
        :meth:`ColumnStore.nbytes_estimate`); the result cache and the
        memory broker weigh entries and charges with this."""
        return 256 + sum(store.nbytes_estimate() for store in self._stores)


#: sampled per-value costs extrapolate from this many evenly spaced
#: values — enough to smooth skew, cheap enough for hot paths
_SAMPLE_VALUES = 64

#: CPython object sizes are interpreter details; these are deliberately
#: round figures (object header + typical payload on a 64-bit build)
_SCALAR_NBYTES = {
    type(None): 16,
    bool: 28,
    int: 32,
    float: 24,
    datetime.date: 40,
}


def estimate_value_nbytes(value: Any) -> int:
    """Rough resident bytes of one Python value (plus its list slot)."""
    kind = type(value)
    fixed = _SCALAR_NBYTES.get(kind)
    if fixed is not None:
        return fixed + 8
    if kind is str:
        return 56 + len(value) + 8
    if kind in (tuple, list):
        return 64 + sum(estimate_value_nbytes(v) for v in value)
    return 64 + 8


def estimate_values_nbytes(values: Sequence[Any]) -> int:
    """Estimated resident bytes of a plain value list, extrapolated from
    an evenly spaced sample of at most ``_SAMPLE_VALUES`` values."""
    count = len(values)
    if count == 0:
        return 64
    if count <= _SAMPLE_VALUES:
        return 64 + sum(estimate_value_nbytes(v) for v in values)
    step = count // _SAMPLE_VALUES
    sampled = values[::step][:_SAMPLE_VALUES]
    per_value = sum(estimate_value_nbytes(v) for v in sampled) / len(sampled)
    return 64 + int(per_value * count)


def estimate_columns_nbytes(columns: Sequence[Sequence[Any]]) -> int:
    """Estimated resident bytes of raw columnar data (the executor's
    intermediate relations: one plain value list per column)."""
    return sum(estimate_values_nbytes(column) for column in columns)


_ALLOWED_TYPES = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (float, int),
    DataType.STRING: (str,),
    DataType.DATE: (datetime.date,),
    DataType.BOOLEAN: (bool,),
}


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _row_sort_key(row: Row) -> tuple:
    return tuple(_null_aware_key(value, True) for value in row)


def _sort_key_for(index: int, ascending: bool):
    """One ORDER-BY pass's key function, built once per key."""

    def key(row: Row, _index: int = index, _ascending: bool = ascending) -> tuple:
        return _null_aware_key(row[_index], _ascending)

    return key


def _null_aware_key(value: Any, ascending: bool) -> tuple:
    # (null flag, type bucket, value) gives a total order over mixed rows.
    if value is None:
        return (1 if ascending else 0, "", "")
    return (0 if ascending else 1, type(value).__name__, value)


def tables_equal(left: Table, right: Table) -> bool:
    """Multiset equality of rows (column order must agree).

    Floats compare with a relative tolerance: different plans sum in
    different orders, so the low bits legitimately differ.
    """
    if len(left.columns) != len(right.columns):
        return False
    if len(left.rows) != len(right.rows):
        return False
    left_sorted = sorted(left.rows, key=_freeze_row)
    right_sorted = sorted(right.rows, key=_freeze_row)
    return all(
        _rows_close(a, b) for a, b in zip(left_sorted, right_sorted)
    )


def _rows_close(left: Row, right: Row) -> bool:
    for a, b in zip(left, right):
        if a is None or b is None:
            if a is not b:
                return False
            continue
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if not math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-9):
                return False
            continue
        if a != b:
            return False
    return True


def _freeze_row(row: Row) -> tuple:
    return tuple(_null_aware_key(_canonical_value(value), True) for value in row)


def _canonical_value(value: Any) -> Any:
    # Sort key only: coarse enough that float noise does not reorder rows
    # relative to their counterpart in the other table.
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, float):
        return float(f"{value:.6g}")
    return value
