"""In-memory relational tables.

A :class:`Table` is a named list of columns plus a list of row tuples —
deliberately simple storage so that every performance difference measured
by the benchmarks comes from the *amount of data scanned*, which is the
effect the paper's ASTs exploit.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.catalog.types import value_matches_type
from repro.errors import ExecutionError, TypeMismatchError

Row = tuple


class Table:
    """Column names + rows. Rows are plain tuples in column order."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Row] = ()):
        self.columns = list(columns)
        self.rows: list[Row] = [tuple(row) for row in rows]
        self._index = {name: i for i, name in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise ExecutionError(f"duplicate column names: {self.columns}")

    # ------------------------------------------------------------------
    @classmethod
    def from_schema(cls, schema: TableSchema, rows: Iterable[Row] = ()) -> "Table":
        table = cls(schema.column_names)
        table.extend_checked(rows, schema)
        return table

    def extend_checked(self, rows: Iterable[Row], schema: TableSchema) -> None:
        """Append rows, validating arity, types and nullability."""
        width = len(schema.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise TypeMismatchError(
                    f"row has {len(row)} values, table {schema.name!r} has {width}"
                )
            for value, column in zip(row, schema.columns):
                if value is None and not column.nullable:
                    raise TypeMismatchError(
                        f"NULL in non-nullable column {schema.name}.{column.name}"
                    )
                if not value_matches_type(value, column.dtype):
                    raise TypeMismatchError(
                        f"value {value!r} does not match "
                        f"{schema.name}.{column.name}: {column.dtype.value}"
                    )
            self.rows.append(row)

    # ------------------------------------------------------------------
    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ExecutionError(
                f"no column {name!r}; have {self.columns}"
            ) from None

    def column_values(self, name: str) -> list[Any]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    def sorted_rows(self) -> list[Row]:
        """Rows in a canonical order, for set-style comparison in tests."""
        return sorted(self.rows, key=_row_sort_key)

    def sort_by(self, keys: list[tuple[str, bool]]) -> None:
        """In-place ORDER BY; NULLs sort last on ascending keys."""
        for name, ascending in reversed(keys):
            index = self.column_index(name)
            self.rows.sort(
                key=lambda row: _null_aware_key(row[index], ascending),
                reverse=not ascending,
            )

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering for examples and docs."""
        shown = self.rows[:limit]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(self.columns)
        ]
        header = "  ".join(name.ljust(w) for name, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(value.ljust(w) for value, w in zip(row, widths))
            for row in cells
        ]
        footer = [] if len(self.rows) <= limit else [f"... ({len(self.rows)} rows)"]
        return "\n".join([header, rule, *body, *footer])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.columns}, {len(self.rows)} rows)"


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _row_sort_key(row: Row) -> tuple:
    return tuple(_null_aware_key(value, True) for value in row)


def _null_aware_key(value: Any, ascending: bool) -> tuple:
    # (null flag, type bucket, value) gives a total order over mixed rows.
    if value is None:
        return (1 if ascending else 0, "", "")
    return (0 if ascending else 1, type(value).__name__, value)


def tables_equal(left: Table, right: Table) -> bool:
    """Multiset equality of rows (column order must agree).

    Floats compare with a relative tolerance: different plans sum in
    different orders, so the low bits legitimately differ.
    """
    if len(left.columns) != len(right.columns):
        return False
    if len(left.rows) != len(right.rows):
        return False
    left_sorted = sorted(left.rows, key=_freeze_row)
    right_sorted = sorted(right.rows, key=_freeze_row)
    return all(
        _rows_close(a, b) for a, b in zip(left_sorted, right_sorted)
    )


def _rows_close(left: Row, right: Row) -> bool:
    import math

    for a, b in zip(left, right):
        if a is None or b is None:
            if a is not b:
                return False
            continue
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if not math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-9):
                return False
            continue
        if a != b:
            return False
    return True


def _freeze_row(row: Row) -> tuple:
    return tuple(_null_aware_key(_canonical_value(value), True) for value in row)


def _canonical_value(value: Any) -> Any:
    # Sort key only: coarse enough that float noise does not reorder rows
    # relative to their counterpart in the other table.
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, float):
        return float(f"{value:.6g}")
    return value
