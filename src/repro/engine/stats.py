"""Table and column statistics.

The paper's companion problems need size estimates: problem (b) compares
plan sizes, and problem (a)'s advisor needs cuboid cardinalities — which
are expensive to compute exactly (a full GROUP BY per lattice node).
This module provides:

* :class:`TableStats` — row count plus per-column distinct-value counts
  and min/max, collected in one scan;
* :func:`estimate_group_count` — the standard sampling estimator for the
  number of distinct grouping-key combinations, using the
  Goodman/"birthday" style scale-up from a uniform sample (bounded by
  the product of per-column NDVs and by the row count).

Estimates are deliberately simple; their only consumers are heuristics
that tolerate 2-3x error (advisor ordering, accept/reject thresholds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.table import Table


@dataclass
class ColumnStats:
    distinct: int
    nulls: int
    minimum: Any = None
    maximum: Any = None
    #: False when ``distinct`` is a sampling estimate (cap exceeded)
    exact: bool = True


@dataclass
class TableStats:
    rows: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def ndv(self, column: str) -> int:
        stats = self.columns.get(column)
        return stats.distinct if stats is not None else max(1, self.rows)


#: default per-column bound on exact distinct tracking
DEFAULT_DISTINCT_CAP = 4096


def collect_stats(table: Table, distinct_cap: int = DEFAULT_DISTINCT_CAP) -> TableStats:
    """One-pass statistics over every column, with bounded memory.

    Row count, null counts, and min/max are exact (O(1) extra memory per
    column). Distinct counts are exact **only up to** ``distinct_cap``
    values per column; a column that exceeds the cap stops accumulating
    and its NDV is re-estimated afterwards with the same first-order
    jackknife sampler as :func:`estimate_group_count` (O(sample) memory
    and time), with ``exact=False`` recorded on its
    :class:`ColumnStats`.

    Accuracy contract: exact columns are exact; estimated columns carry
    the sampler's error (typically within 2-3x, which the consumers —
    advisor ordering, accept/reject thresholds — are designed to
    tolerate). Peak extra memory is O(columns × distinct_cap) regardless
    of table size.
    """
    seen: list[set] = [set() for _ in table.columns]
    saturated = [False] * len(table.columns)
    nulls = [0] * len(table.columns)
    minimums: list[Any] = [None] * len(table.columns)
    maximums: list[Any] = [None] * len(table.columns)
    for row in table.rows:
        for index, value in enumerate(row):
            if value is None:
                nulls[index] += 1
                continue
            if not saturated[index]:
                seen[index].add(value)
                if len(seen[index]) > distinct_cap:
                    saturated[index] = True
                    seen[index].clear()  # release the memory immediately
            try:
                if minimums[index] is None or value < minimums[index]:
                    minimums[index] = value
                if maximums[index] is None or value > maximums[index]:
                    maximums[index] = value
            except TypeError:
                pass  # mixed types: min/max undefined, NDV still fine
    stats = TableStats(rows=len(table))
    for index, name in enumerate(table.columns):
        if saturated[index]:
            distinct = max(
                distinct_cap + 1, estimate_group_count(table, [name])
            )
            exact = False
        else:
            distinct = len(seen[index])
            exact = True
        stats.columns[name] = ColumnStats(
            distinct=distinct,
            nulls=nulls[index],
            minimum=minimums[index],
            maximum=maximums[index],
            exact=exact,
        )
    return stats


def estimate_group_count(
    table: Table,
    key_columns: Sequence[str],
    sample_size: int = 2000,
    seed: int = 7,
    stats: TableStats | None = None,
) -> int:
    """Estimate ``|GROUP BY key_columns|`` from a uniform sample.

    Uses the first-order jackknife scale-up: with ``d`` distinct keys in
    a sample of ``n`` rows, of which ``f1`` appear exactly once, the
    estimate is ``d + f1 * (N - n) / n`` — exact keys that appeared more
    than once are likely complete, singletons scale with the data. The
    result is clamped by the row count and by the product of per-column
    NDVs when full statistics are available.
    """
    total = len(table)
    if not key_columns:
        return 1
    if total == 0:
        return 0
    indexes = [table.column_index(name) for name in key_columns]
    if total <= sample_size:
        exact = {tuple(row[i] for i in indexes) for row in table.rows}
        return len(exact)

    rng = random.Random(seed)
    sample = rng.sample(table.rows, sample_size)
    counts: dict[tuple, int] = {}
    for row in sample:
        key = tuple(row[i] for i in indexes)
        counts[key] = counts.get(key, 0) + 1
    distinct = len(counts)
    singletons = sum(1 for c in counts.values() if c == 1)
    estimate = distinct + singletons * (total - sample_size) / sample_size

    bound = float(total)
    if stats is not None:
        product = 1.0
        for name in key_columns:
            product *= max(1, stats.ndv(name))
            if product > bound:
                break
        bound = min(bound, product)
    return max(distinct, min(int(round(estimate)), int(bound)))
