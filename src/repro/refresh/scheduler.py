"""The background refresh scheduler for deferred summary tables.

A single daemon worker thread drains a bounded, deduplicating queue of
summary-table names that have staged deltas. Work is *batched* twice
over:

* the worker pops every queued name in one sweep (after a short batching
  window that lets a burst of ingest coalesce), and
* per summary, **all** pending delta batches are applied in one pass —
  the staged insert rows are merged into a single summary-delta query
  and the staged delete rows into another, so a thousand small INSERT
  statements cost two delta evaluations instead of a thousand.

Incremental application reuses the summary-delta merge from
:mod:`repro.asts.maintenance` (:func:`~repro.asts.maintenance.apply_pending`);
whenever the summary is not self-maintainable for the pending change
(AVG/DISTINCT, HAVING, deletes against MIN/MAX, deltas spanning several
base tables, ...) the worker falls back to full recomputation and counts
it — never silently degrades. Both the delta evaluations and the full
recompute run through ``Database.execute_graph``, so with ``SET EXECUTOR
PARALLEL <n>`` a recompute's base-table scan and cuboid group-bys are
partitioned across the session's morsel worker pool and the partial
aggregates merged back (docs/EXECUTOR.md) — the refresh worker itself
stays single-threaded, only each query inside it fans out.

Fault tolerance: a refresh that raises *unexpectedly* (anything beyond
the ReproError-driven recompute fallback) is retried with exponential
backoff (``retry_base_delay * 2**attempt``) up to ``max_attempts``
total tries, after which the summary is **quarantined** — excluded from
rewrite routing via :func:`repro.rewrite.index.filter_fresh` and the
decision-cache epoch bump, surfaced in ``rewrite_stats()`` / EXPLAIN /
``\\refresh``, and re-admitted only by a successful ``REFRESH SUMMARY
TABLE`` (:meth:`repro.engine.database.Database.refresh_summary_tables`).
Queries keep answering correctly from base tables throughout. Errors
are kept in a bounded ring buffer so a persistently failing summary
cannot grow memory without limit.

Determinism hooks: :meth:`RefreshScheduler.drain` blocks until the queue
is empty, the worker is idle, *and* no retries are outstanding — pending
backoff delays are skipped while draining, so a poisoned summary reaches
its quarantine verdict promptly (tests and benchmarks call ``drain()``
before comparing results). :meth:`RefreshScheduler.stop` finishes queued
work (including outstanding retries) and joins the thread. All mutation
of summary tables happens under the database's maintenance lock,
serializing the worker against ingest.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import QueryCancelled, ReproError
from repro.governor import scope as governor_scope
from repro.governor.budget import CancellationToken, QueryBudget
from repro.obs import spans as _spans
from repro.resources.broker import BROKER
from repro.testing import faults


class _DeferRecompute(Exception):
    """Internal: a fallback recompute was postponed because the memory
    broker reports global pressure (recomputation is deferrable work;
    user queries are not). Never escapes the scheduler."""


class RefreshScheduler:
    """Applies staged deltas to deferred summary tables off the ingest path.

    ``queue_limit`` bounds the name queue — producers block (backpressure)
    rather than growing it without bound, though deduplication keeps the
    queue no longer than the number of deferred summaries in practice.
    ``batch_window`` is how long the worker waits after waking before
    sweeping the queue, so bursts of ingest coalesce into one refresh
    pass; ``drain()`` skips the window. ``max_attempts`` is the total
    number of times one summary's refresh may fail before quarantine;
    ``retry_base_delay`` seeds the exponential backoff between tries.
    ``error_limit`` caps the retained error ring buffer.
    """

    def __init__(
        self,
        database,
        queue_limit: int = 1024,
        batch_window: float = 0.005,
        max_attempts: int = 4,
        retry_base_delay: float = 0.02,
        error_limit: int = 64,
        registry=None,
    ):
        self._database = database
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.max_attempts = max_attempts
        self.retry_base_delay = retry_base_delay
        self._queue: deque[str] = deque()
        self._queued: set[str] = set()
        #: name -> monotonic time its backoff expires
        self._retries: dict[str, float] = {}
        #: name -> failures so far (cleared on success/quarantine/refresh)
        self._attempts: dict[str, int] = {}
        self._condition = threading.Condition()
        self._thread: threading.Thread | None = None
        self._running = False
        #: set by the worker (under the lock) the instant it commits to
        #: exiting — ``Thread.is_alive()`` alone can't distinguish a
        #: worker that will loop again from one in final teardown, and
        #: that gap would let ``notify`` strand work on a dead queue
        self._worker_exited = False
        self._busy = False
        self._draining = False
        # Cooperative cancellation of the in-flight refresh: the worker
        # runs each refresh under a governor scope holding this token,
        # so interrupt() / stop(cancel_inflight=True) can stop a stuck
        # apply or recompute at its next executor tick.
        self._inflight_token: CancellationToken | None = None
        self._inflight_name: str | None = None
        #: summaries whose last refresh was cancelled mid-apply — the
        #: merge may be partial, so their next refresh must skip the
        #: incremental path and recompute from base tables
        self._force_recompute: set[str] = set()
        # counters (monotonic; surfaced via Database.rewrite_stats() and,
        # through the shared registry, \metrics / Prometheus exposition)
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self._counters = {
            name: registry.counter(f"scheduler_{name}", help)
            for name, help in (
                ("refreshes_applied", "deferred refresh passes applied"),
                ("fallback_recomputes", "refreshes that fell back to full recompute"),
                ("batches_applied", "delta batches merged into summaries"),
                ("retries_scheduled", "failed refreshes scheduled for retry"),
                ("deferred_recomputes",
                 "fallback recomputes postponed under memory pressure"),
                ("quarantines", "summaries quarantined after repeated failures"),
            )
        }
        #: last fallback reason per summary name (for the \refresh command)
        self.last_fallbacks: dict[str, str] = {}
        #: worker-side errors that survived the per-name guard — a ring
        #: buffer (newest kept) so persistent failures stay bounded
        self.errors: deque[str] = deque(maxlen=error_limit)

    # ------------------------------------------------------------------
    # Counters — registry-backed properties for *reads* (tests and
    # rewrite_stats keep working). Worker-side increments go through
    # ``self._counters[name].inc()``: the property's ``+= 1`` expands to
    # a get-then-set, which can silently resurrect a pre-reset value if
    # ``\\metrics reset`` swaps the registry between the two halves.
    # ``inc`` holds the metric's own lock, so it either lands before the
    # snapshot (and is captured) or after (and starts the new epoch).
    # ------------------------------------------------------------------
    def _counter_value(name):
        def get(self):
            return self._counters[name].value

        def set_(self, value):
            self._counters[name].set(value)

        return property(get, set_)

    refreshes_applied = _counter_value("refreshes_applied")
    fallback_recomputes = _counter_value("fallback_recomputes")
    batches_applied = _counter_value("batches_applied")
    retries_scheduled = _counter_value("retries_scheduled")
    deferred_recomputes = _counter_value("deferred_recomputes")
    quarantines = _counter_value("quarantines")
    del _counter_value

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def notify(self, names: list[str]) -> None:
        """Enqueue summaries for refresh (deduplicating); starts the
        worker on first use. Must not be called while holding the
        database's maintenance lock — the worker needs that lock to make
        room in a full queue."""
        if not names:
            return
        with self._condition:
            self._ensure_worker()
            for name in names:
                key = name.lower()
                if key in self._queued:
                    continue
                while len(self._queue) >= self.queue_limit:
                    self._condition.wait()
                self._queue.append(key)
                self._queued.add(key)
            self._condition.notify_all()

    def drain(self) -> None:
        """Block until every queued refresh (and outstanding retry) has
        been applied or quarantined."""
        with self._condition:
            if self._thread is None:
                return
            self._draining = True
            self._condition.notify_all()
            while self._queue or self._retries or self._busy:
                self._condition.wait()
            self._draining = False
            self._condition.notify_all()

    def stop(self, cancel_inflight: bool = False) -> None:
        """Stop the worker and join it.

        By default queued work (including retries) is finished first —
        the graceful shutdown tests and ``Database.close()`` rely on
        that. ``cancel_inflight=True`` is the load-shedding variant:
        the queue and retry ladder are discarded, the in-flight
        refresh's token is cancelled (it stops at its next cooperative
        tick and its summary is flagged for a full recompute), and the
        join returns promptly instead of blocking behind a stuck query.

        A concurrent ``notify`` may legitimately restart the worker the
        moment the old one exits; joining a captured reference (rather
        than re-reading ``self._thread``) keeps a racing restart from
        being joined — or clobbered — by this stop.
        """
        with self._condition:
            thread = self._thread
            if thread is None:
                return
            self._running = False
            if cancel_inflight:
                self._queue.clear()
                self._queued.clear()
                self._retries.clear()
                if self._inflight_token is not None:
                    self._inflight_token.cancel("scheduler stopping")
            self._condition.notify_all()
        thread.join()
        with self._condition:
            if self._thread is thread:
                self._thread = None

    def interrupt(self, names: list[str] | None = None) -> bool:
        """Cancel the in-flight refresh cooperatively.

        ``names`` restricts the interrupt to refreshes of those
        summaries (``None`` interrupts whatever is running). Used by
        manual ``REFRESH SUMMARY TABLE`` so it never waits behind a
        stuck worker refresh of the same summary. Returns True when a
        token was cancelled. The cancelled refresh is not a failure:
        the worker flags the summary for a forced recompute and
        requeues it (see :meth:`_on_cancelled`).
        """
        with self._condition:
            token = self._inflight_token
            if token is None:
                return False
            if names is not None:
                keys = {name.lower() for name in names}
                if self._inflight_name not in keys:
                    return False
            token.cancel("refresh interrupted")
            return True

    def reset_attempts(self, name: str) -> None:
        """Forget ``name``'s failure history (a manual refresh
        succeeded, so its next failure starts a fresh backoff ladder —
        and, having fully recomputed, any forced-recompute flag from an
        earlier cancelled merge is satisfied too)."""
        with self._condition:
            self._attempts.pop(name.lower(), None)
            self._retries.pop(name.lower(), None)
            self._force_recompute.discard(name.lower())
            self._condition.notify_all()

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def pending_retries(self) -> int:
        return len(self._retries)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if (
            self._thread is not None
            and self._thread.is_alive()
            and not self._worker_exited
        ):
            return
        self._running = True
        self._worker_exited = False
        self._thread = threading.Thread(
            target=self._loop, name="refresh-scheduler", daemon=True
        )
        self._thread.start()

    def _due_retries(self) -> list[str]:
        """Retry names whose backoff has expired. While draining or
        stopping, every retry is due — the delay only pacifies the
        steady state, never the determinism hooks."""
        if not self._retries:
            return []
        if self._draining or not self._running:
            return list(self._retries)
        now = time.monotonic()
        return [name for name, due in self._retries.items() if due <= now]

    def _wait_timeout(self) -> float | None:
        """How long the worker may sleep before the next retry is due.

        Must be recomputed immediately before *every* ``Condition.wait``
        — including re-entries after spurious wakeups. ``wait`` can
        return with nothing due and nothing queued, and reusing the
        pre-sleep value there would oversleep a retry whose deadline
        moved closer (or arrived) in the meantime.
        """
        if not self._retries:
            return None
        return max(0.0, min(self._retries.values()) - time.monotonic())

    def _loop(self) -> None:
        while True:
            with self._condition:
                while True:
                    due = self._due_retries()
                    if self._queue or due:
                        break
                    if not self._running and not self._retries:
                        # stopped with nothing left to do; flag the exit
                        # while still holding the lock so a racing
                        # notify() knows to start a replacement
                        self._worker_exited = True
                        return
                    # Recomputed each iteration: a spurious wakeup loops
                    # back here and sleeps for the *remaining* time to
                    # the earliest retry, never the original interval.
                    self._condition.wait(self._wait_timeout())
                if (
                    self.batch_window
                    and self._running
                    and not self._draining
                    and self._queue
                ):
                    # Let a burst of ingest coalesce before sweeping —
                    # but never sleep past the next retry deadline: a
                    # retry due sooner than the window must not wait
                    # behind it.
                    window = self.batch_window
                    next_retry = self._wait_timeout()
                    if next_retry is not None and next_retry < window:
                        window = next_retry
                    if window > 0:
                        self._condition.wait(window)
                    due = self._due_retries()
                names = list(self._queue)
                self._queue.clear()
                self._queued.clear()
                for name in due:
                    self._retries.pop(name, None)
                    if name not in names:
                        names.append(name)
                self._busy = True
                self._condition.notify_all()  # wake blocked producers
            try:
                for name in names:
                    self._process(name)
            finally:
                with self._condition:
                    self._busy = False
                    self._condition.notify_all()

    def _process(self, name: str) -> None:
        """One guarded refresh attempt: success clears the failure
        history, unexpected failure schedules a retry or quarantines."""
        try:
            self._refresh_one(name)
        except QueryCancelled as error:
            # Not a failure: someone (stop(), interrupt(), REFRESH)
            # asked this refresh to yield. No backoff, no quarantine.
            self._on_cancelled(name, error)
        except _DeferRecompute as deferred:
            # Not a failure either: memory pressure postponed the
            # recompute. Retry later without burning an attempt — the
            # backoff ladder is for *broken* summaries, not busy hosts.
            self._on_deferred(name, deferred)
        except Exception as error:  # keep the worker alive
            self._on_failure(name, error)
        else:
            with self._condition:
                self._attempts.pop(name, None)
                self._force_recompute.discard(name)

    def _on_cancelled(self, name: str, error: QueryCancelled) -> None:
        """A refresh was cancelled mid-flight. The incremental merge may
        have partially landed (``last_refresh_lsn`` was *not* advanced),
        so flag the summary for a full recompute and — unless the whole
        scheduler is shutting down — requeue it so it converges without
        waiting for the next ingest."""
        with self._condition:
            self._force_recompute.add(name)
            self.errors.append(
                f"{name}: refresh cancelled ({error}); recompute scheduled"
            )
            if (
                self._running
                and name not in self._queued
                and len(self._queue) < self.queue_limit
            ):
                self._queue.append(name)
                self._queued.add(name)
            self._condition.notify_all()

    def _on_deferred(self, name: str, deferred: "_DeferRecompute") -> None:
        """A fallback recompute yielded to memory pressure: remember
        that the summary still needs a full recompute (its incremental
        state is behind) and schedule a plain retry — no attempt
        counted, no quarantine risk from being deferred repeatedly."""
        with self._condition:
            self._force_recompute.add(name)
            self._retries[name] = time.monotonic() + self.retry_base_delay
            self._counters["deferred_recomputes"].inc()
            self.errors.append(
                f"{name}: recompute deferred under memory pressure "
                f"({deferred})"
            )
            self._condition.notify_all()

    def _on_failure(self, name: str, error: Exception) -> None:
        quarantine = False
        with self._condition:
            attempts = self._attempts.get(name, 0) + 1
            self._attempts[name] = attempts
            self.errors.append(
                f"{name}: attempt {attempts}/{self.max_attempts}: {error}"
            )
            if attempts >= self.max_attempts:
                self._attempts.pop(name, None)
                quarantine = True
            else:
                delay = self.retry_base_delay * (2 ** (attempts - 1))
                self._retries[name] = time.monotonic() + delay
                self._counters["retries_scheduled"].inc()
            self._condition.notify_all()
        if quarantine:
            self._counters["quarantines"].inc()
            reason = (
                f"refresh failed {self.max_attempts} time(s); "
                f"last error: {error}"
            )
            self.last_fallbacks[name] = reason
            self._database.quarantine_summary(name, reason)

    def _refresh_one(self, name: str) -> None:
        """Bring one deferred summary fully up to date with the log.

        Runs under a governor scope holding a fresh cancellation token,
        published as the in-flight token so :meth:`interrupt` and
        :meth:`stop` can stop the apply/recompute at its next executor
        tick. A raised :class:`QueryCancelled` propagates to
        :meth:`_process` (it must *not* be absorbed by the
        incremental-apply fallback below — a cancelled apply means
        "yield now", not "recompute now while still holding the lock").
        """
        from repro.asts.maintenance import apply_pending

        database = self._database
        token = CancellationToken()
        with self._condition:
            self._inflight_token = token
            self._inflight_name = name
        tracer = _spans.TRACER
        span = (
            tracer.root_for(
                "refresh.apply", summary=name,
                lsn=database.delta_log.lsn,
            )
            if tracer is not None
            else _spans.NOOP
        )
        try:
            with span:
                with governor_scope.activate(QueryBudget(token=token)):
                    self._refresh_one_locked(name, apply_pending, database)
        finally:
            with self._condition:
                self._inflight_token = None
                self._inflight_name = None

    def _refresh_one_locked(self, name: str, apply_pending, database) -> None:
        with database._maintenance_lock:
            summary = database.summary_tables.get(name.lower())
            if (
                summary is None
                or not summary.refresh.is_deferred
                or summary.refresh.quarantined
            ):
                return
            log = database.delta_log
            upto = log.lsn
            batches = log.pending_for(
                summary.base_tables(), summary.refresh.last_refresh_lsn
            )
            with self._condition:
                forced = name in self._force_recompute
            if batches:
                if forced:
                    # A previous refresh of this summary was cancelled
                    # mid-merge: the incremental state is suspect, so
                    # skip straight to the full recompute.
                    reason = "recompute forced after cancelled refresh"
                else:
                    try:
                        faults.fire("scheduler.apply")
                        reason = apply_pending(database, summary, batches)
                    except QueryCancelled:
                        raise
                    except ReproError as error:
                        reason = f"incremental apply failed: {error}"
                if reason is not None:
                    with self._condition:
                        draining = self._draining
                    if BROKER.should_defer() and not draining:
                        # Recomputation re-materializes the whole
                        # summary; under global pressure that is the
                        # first work to postpone. drain() (determinism
                        # hook) still forces it through.
                        raise _DeferRecompute(reason)
                    faults.fire("scheduler.recompute")
                    data = database.execute_graph(summary.graph)
                    summary.table.rows[:] = data.rows
                    summary.stats["rows"] = float(len(data))
                    self._counters["fallback_recomputes"].inc()
                    self.last_fallbacks[summary.name] = reason
                self._counters["refreshes_applied"].inc()
                self._counters["batches_applied"].inc(len(batches))
            summary.refresh.pending_deltas = 0
            summary.refresh.last_refresh_lsn = upto
            database._prune_delta_log()
            database._bump_rewrite_epoch()
