"""The background refresh scheduler for deferred summary tables.

A single daemon worker thread drains a bounded, deduplicating queue of
summary-table names that have staged deltas. Work is *batched* twice
over:

* the worker pops every queued name in one sweep (after a short batching
  window that lets a burst of ingest coalesce), and
* per summary, **all** pending delta batches are applied in one pass —
  the staged insert rows are merged into a single summary-delta query
  and the staged delete rows into another, so a thousand small INSERT
  statements cost two delta evaluations instead of a thousand.

Incremental application reuses the summary-delta merge from
:mod:`repro.asts.maintenance` (:func:`~repro.asts.maintenance.apply_pending`);
whenever the summary is not self-maintainable for the pending change
(AVG/DISTINCT, HAVING, deletes against MIN/MAX, deltas spanning several
base tables, ...) the worker falls back to full recomputation and counts
it — never silently degrades.

Fault tolerance: a refresh that raises *unexpectedly* (anything beyond
the ReproError-driven recompute fallback) is retried with exponential
backoff (``retry_base_delay * 2**attempt``) up to ``max_attempts``
total tries, after which the summary is **quarantined** — excluded from
rewrite routing via :func:`repro.rewrite.index.filter_fresh` and the
decision-cache epoch bump, surfaced in ``rewrite_stats()`` / EXPLAIN /
``\\refresh``, and re-admitted only by a successful ``REFRESH SUMMARY
TABLE`` (:meth:`repro.engine.database.Database.refresh_summary_tables`).
Queries keep answering correctly from base tables throughout. Errors
are kept in a bounded ring buffer so a persistently failing summary
cannot grow memory without limit.

Determinism hooks: :meth:`RefreshScheduler.drain` blocks until the queue
is empty, the worker is idle, *and* no retries are outstanding — pending
backoff delays are skipped while draining, so a poisoned summary reaches
its quarantine verdict promptly (tests and benchmarks call ``drain()``
before comparing results). :meth:`RefreshScheduler.stop` finishes queued
work (including outstanding retries) and joins the thread. All mutation
of summary tables happens under the database's maintenance lock,
serializing the worker against ingest.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import ReproError
from repro.testing import faults


class RefreshScheduler:
    """Applies staged deltas to deferred summary tables off the ingest path.

    ``queue_limit`` bounds the name queue — producers block (backpressure)
    rather than growing it without bound, though deduplication keeps the
    queue no longer than the number of deferred summaries in practice.
    ``batch_window`` is how long the worker waits after waking before
    sweeping the queue, so bursts of ingest coalesce into one refresh
    pass; ``drain()`` skips the window. ``max_attempts`` is the total
    number of times one summary's refresh may fail before quarantine;
    ``retry_base_delay`` seeds the exponential backoff between tries.
    ``error_limit`` caps the retained error ring buffer.
    """

    def __init__(
        self,
        database,
        queue_limit: int = 1024,
        batch_window: float = 0.005,
        max_attempts: int = 4,
        retry_base_delay: float = 0.02,
        error_limit: int = 64,
        registry=None,
    ):
        self._database = database
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.max_attempts = max_attempts
        self.retry_base_delay = retry_base_delay
        self._queue: deque[str] = deque()
        self._queued: set[str] = set()
        #: name -> monotonic time its backoff expires
        self._retries: dict[str, float] = {}
        #: name -> failures so far (cleared on success/quarantine/refresh)
        self._attempts: dict[str, int] = {}
        self._condition = threading.Condition()
        self._thread: threading.Thread | None = None
        self._running = False
        #: set by the worker (under the lock) the instant it commits to
        #: exiting — ``Thread.is_alive()`` alone can't distinguish a
        #: worker that will loop again from one in final teardown, and
        #: that gap would let ``notify`` strand work on a dead queue
        self._worker_exited = False
        self._busy = False
        self._draining = False
        # counters (monotonic; surfaced via Database.rewrite_stats() and,
        # through the shared registry, \metrics / Prometheus exposition)
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self._counters = {
            name: registry.counter(f"scheduler_{name}", help)
            for name, help in (
                ("refreshes_applied", "deferred refresh passes applied"),
                ("fallback_recomputes", "refreshes that fell back to full recompute"),
                ("batches_applied", "delta batches merged into summaries"),
                ("retries_scheduled", "failed refreshes scheduled for retry"),
                ("quarantines", "summaries quarantined after repeated failures"),
            )
        }
        #: last fallback reason per summary name (for the \refresh command)
        self.last_fallbacks: dict[str, str] = {}
        #: worker-side errors that survived the per-name guard — a ring
        #: buffer (newest kept) so persistent failures stay bounded
        self.errors: deque[str] = deque(maxlen=error_limit)

    # ------------------------------------------------------------------
    # Counters — registry-backed so `+= 1` keeps working everywhere
    # ------------------------------------------------------------------
    def _counter_value(name):
        def get(self):
            return self._counters[name].value

        def set_(self, value):
            self._counters[name].set(value)

        return property(get, set_)

    refreshes_applied = _counter_value("refreshes_applied")
    fallback_recomputes = _counter_value("fallback_recomputes")
    batches_applied = _counter_value("batches_applied")
    retries_scheduled = _counter_value("retries_scheduled")
    quarantines = _counter_value("quarantines")
    del _counter_value

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def notify(self, names: list[str]) -> None:
        """Enqueue summaries for refresh (deduplicating); starts the
        worker on first use. Must not be called while holding the
        database's maintenance lock — the worker needs that lock to make
        room in a full queue."""
        if not names:
            return
        with self._condition:
            self._ensure_worker()
            for name in names:
                key = name.lower()
                if key in self._queued:
                    continue
                while len(self._queue) >= self.queue_limit:
                    self._condition.wait()
                self._queue.append(key)
                self._queued.add(key)
            self._condition.notify_all()

    def drain(self) -> None:
        """Block until every queued refresh (and outstanding retry) has
        been applied or quarantined."""
        with self._condition:
            if self._thread is None:
                return
            self._draining = True
            self._condition.notify_all()
            while self._queue or self._retries or self._busy:
                self._condition.wait()
            self._draining = False
            self._condition.notify_all()

    def stop(self) -> None:
        """Finish queued work (including retries) and join the worker.

        A concurrent ``notify`` may legitimately restart the worker the
        moment the old one exits; joining a captured reference (rather
        than re-reading ``self._thread``) keeps a racing restart from
        being joined — or clobbered — by this stop.
        """
        with self._condition:
            thread = self._thread
            if thread is None:
                return
            self._running = False
            self._condition.notify_all()
        thread.join()
        with self._condition:
            if self._thread is thread:
                self._thread = None

    def reset_attempts(self, name: str) -> None:
        """Forget ``name``'s failure history (a manual refresh
        succeeded, so its next failure starts a fresh backoff ladder)."""
        with self._condition:
            self._attempts.pop(name.lower(), None)
            self._retries.pop(name.lower(), None)
            self._condition.notify_all()

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def pending_retries(self) -> int:
        return len(self._retries)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if (
            self._thread is not None
            and self._thread.is_alive()
            and not self._worker_exited
        ):
            return
        self._running = True
        self._worker_exited = False
        self._thread = threading.Thread(
            target=self._loop, name="refresh-scheduler", daemon=True
        )
        self._thread.start()

    def _due_retries(self) -> list[str]:
        """Retry names whose backoff has expired. While draining or
        stopping, every retry is due — the delay only pacifies the
        steady state, never the determinism hooks."""
        if not self._retries:
            return []
        if self._draining or not self._running:
            return list(self._retries)
        now = time.monotonic()
        return [name for name, due in self._retries.items() if due <= now]

    def _wait_timeout(self) -> float | None:
        """How long the worker may sleep before the next retry is due."""
        if not self._retries:
            return None
        return max(0.0, min(self._retries.values()) - time.monotonic())

    def _loop(self) -> None:
        while True:
            with self._condition:
                while True:
                    due = self._due_retries()
                    if self._queue or due:
                        break
                    if not self._running and not self._retries:
                        # stopped with nothing left to do; flag the exit
                        # while still holding the lock so a racing
                        # notify() knows to start a replacement
                        self._worker_exited = True
                        return
                    self._condition.wait(self._wait_timeout())
                if (
                    self.batch_window
                    and self._running
                    and not self._draining
                    and self._queue
                ):
                    # let a burst of ingest coalesce before sweeping
                    self._condition.wait(self.batch_window)
                    due = self._due_retries()
                names = list(self._queue)
                self._queue.clear()
                self._queued.clear()
                for name in due:
                    self._retries.pop(name, None)
                    if name not in names:
                        names.append(name)
                self._busy = True
                self._condition.notify_all()  # wake blocked producers
            try:
                for name in names:
                    self._process(name)
            finally:
                with self._condition:
                    self._busy = False
                    self._condition.notify_all()

    def _process(self, name: str) -> None:
        """One guarded refresh attempt: success clears the failure
        history, unexpected failure schedules a retry or quarantines."""
        try:
            self._refresh_one(name)
        except Exception as error:  # keep the worker alive
            self._on_failure(name, error)
        else:
            with self._condition:
                self._attempts.pop(name, None)

    def _on_failure(self, name: str, error: Exception) -> None:
        quarantine = False
        with self._condition:
            attempts = self._attempts.get(name, 0) + 1
            self._attempts[name] = attempts
            self.errors.append(
                f"{name}: attempt {attempts}/{self.max_attempts}: {error}"
            )
            if attempts >= self.max_attempts:
                self._attempts.pop(name, None)
                quarantine = True
            else:
                delay = self.retry_base_delay * (2 ** (attempts - 1))
                self._retries[name] = time.monotonic() + delay
                self.retries_scheduled += 1
            self._condition.notify_all()
        if quarantine:
            self.quarantines += 1
            reason = (
                f"refresh failed {self.max_attempts} time(s); "
                f"last error: {error}"
            )
            self.last_fallbacks[name] = reason
            self._database.quarantine_summary(name, reason)

    def _refresh_one(self, name: str) -> None:
        """Bring one deferred summary fully up to date with the log."""
        from repro.asts.maintenance import apply_pending

        database = self._database
        with database._maintenance_lock:
            summary = database.summary_tables.get(name.lower())
            if (
                summary is None
                or not summary.refresh.is_deferred
                or summary.refresh.quarantined
            ):
                return
            log = database.delta_log
            upto = log.lsn
            batches = log.pending_for(
                summary.base_tables(), summary.refresh.last_refresh_lsn
            )
            if batches:
                try:
                    faults.fire("scheduler.apply")
                    reason = apply_pending(database, summary, batches)
                except ReproError as error:
                    reason = f"incremental apply failed: {error}"
                if reason is not None:
                    faults.fire("scheduler.recompute")
                    data = database.execute_graph(summary.graph)
                    summary.table.rows[:] = data.rows
                    summary.stats["rows"] = float(len(data))
                    self.fallback_recomputes += 1
                    self.last_fallbacks[summary.name] = reason
                self.refreshes_applied += 1
                self.batches_applied += len(batches)
            summary.refresh.pending_deltas = 0
            summary.refresh.last_refresh_lsn = upto
            database._prune_delta_log()
            database._bump_rewrite_epoch()
