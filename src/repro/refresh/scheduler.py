"""The background refresh scheduler for deferred summary tables.

A single daemon worker thread drains a bounded, deduplicating queue of
summary-table names that have staged deltas. Work is *batched* twice
over:

* the worker pops every queued name in one sweep (after a short batching
  window that lets a burst of ingest coalesce), and
* per summary, **all** pending delta batches are applied in one pass —
  the staged insert rows are merged into a single summary-delta query
  and the staged delete rows into another, so a thousand small INSERT
  statements cost two delta evaluations instead of a thousand.

Incremental application reuses the summary-delta merge from
:mod:`repro.asts.maintenance` (:func:`~repro.asts.maintenance.apply_pending`);
whenever the summary is not self-maintainable for the pending change
(AVG/DISTINCT, HAVING, deletes against MIN/MAX, deltas spanning several
base tables, ...) the worker falls back to full recomputation and counts
it — never silently degrades.

Determinism hooks: :meth:`RefreshScheduler.drain` blocks until the queue
is empty and the worker is idle (tests and benchmarks call it before
comparing results); :meth:`RefreshScheduler.stop` finishes queued work
and joins the thread. All mutation of summary tables happens under the
database's maintenance lock, serializing the worker against ingest.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ReproError


class RefreshScheduler:
    """Applies staged deltas to deferred summary tables off the ingest path.

    ``queue_limit`` bounds the name queue — producers block (backpressure)
    rather than growing it without bound, though deduplication keeps the
    queue no longer than the number of deferred summaries in practice.
    ``batch_window`` is how long the worker waits after waking before
    sweeping the queue, so bursts of ingest coalesce into one refresh
    pass; ``drain()`` skips the window.
    """

    def __init__(self, database, queue_limit: int = 1024, batch_window: float = 0.005):
        self._database = database
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self._queue: deque[str] = deque()
        self._queued: set[str] = set()
        self._condition = threading.Condition()
        self._thread: threading.Thread | None = None
        self._running = False
        self._busy = False
        self._draining = False
        # counters (monotonic; surfaced via Database.rewrite_stats())
        self.refreshes_applied = 0
        self.fallback_recomputes = 0
        self.batches_applied = 0
        #: last fallback reason per summary name (for the \refresh command)
        self.last_fallbacks: dict[str, str] = {}
        #: worker-side errors that survived the per-name guard
        self.errors: list[str] = []

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def notify(self, names: list[str]) -> None:
        """Enqueue summaries for refresh (deduplicating); starts the
        worker on first use. Must not be called while holding the
        database's maintenance lock — the worker needs that lock to make
        room in a full queue."""
        if not names:
            return
        with self._condition:
            self._ensure_worker()
            for name in names:
                key = name.lower()
                if key in self._queued:
                    continue
                while len(self._queue) >= self.queue_limit:
                    self._condition.wait()
                self._queue.append(key)
                self._queued.add(key)
            self._condition.notify_all()

    def drain(self) -> None:
        """Block until every queued refresh has been applied."""
        with self._condition:
            if self._thread is None:
                return
            self._draining = True
            self._condition.notify_all()
            while self._queue or self._busy:
                self._condition.wait()
            self._draining = False
            self._condition.notify_all()

    def stop(self) -> None:
        """Finish queued work and join the worker thread."""
        with self._condition:
            if self._thread is None:
                return
            self._running = False
            self._condition.notify_all()
        self._thread.join()
        self._thread = None

    @property
    def queued(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="refresh-scheduler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            with self._condition:
                while self._running and not self._queue:
                    self._condition.wait()
                if not self._queue:
                    return  # stopped with nothing left to do
                if self.batch_window and self._running and not self._draining:
                    # let a burst of ingest coalesce before sweeping
                    self._condition.wait(self.batch_window)
                names = list(self._queue)
                self._queue.clear()
                self._queued.clear()
                self._busy = True
                self._condition.notify_all()  # wake blocked producers
            try:
                for name in names:
                    try:
                        self._refresh_one(name)
                    except Exception as error:  # keep the worker alive
                        self.errors.append(f"{name}: {error}")
            finally:
                with self._condition:
                    self._busy = False
                    self._condition.notify_all()

    def _refresh_one(self, name: str) -> None:
        """Bring one deferred summary fully up to date with the log."""
        from repro.asts.maintenance import apply_pending

        database = self._database
        with database._maintenance_lock:
            summary = database.summary_tables.get(name.lower())
            if summary is None or not summary.refresh.is_deferred:
                return
            log = database.delta_log
            upto = log.lsn
            batches = log.pending_for(
                summary.base_tables(), summary.refresh.last_refresh_lsn
            )
            if batches:
                try:
                    reason = apply_pending(database, summary, batches)
                except ReproError as error:
                    reason = f"incremental apply failed: {error}"
                if reason is not None:
                    data = database.execute_graph(summary.graph)
                    summary.table.rows[:] = data.rows
                    summary.stats["rows"] = float(len(data))
                    self.fallback_recomputes += 1
                    self.last_fallbacks[summary.name] = reason
                self.refreshes_applied += 1
                self.batches_applied += len(batches)
            summary.refresh.pending_deltas = 0
            summary.refresh.last_refresh_lsn = upto
            database._prune_delta_log()
            database._bump_rewrite_epoch()
