"""The delta log: staged base-table changes awaiting deferred refresh.

Under REFRESH IMMEDIATE, every INSERT/DELETE synchronously maintains
every summary table, so ingest latency grows with the number of ASTs.
The delta log breaks that coupling: a change to a base table that any
*deferred* summary depends on is appended here as a :class:`DeltaBatch`
— the raw rows plus a sign — and applied to those summaries later by the
:class:`repro.refresh.scheduler.RefreshScheduler`.

The log keeps one global, monotonically increasing logical timestamp
(``lsn``). Each deferred summary remembers the LSN of its last refresh
(:class:`repro.refresh.policy.RefreshState`); its pending work is exactly
the batches with a later LSN that touch one of its base tables. Batches
every dependent has consumed are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.engine.table import Row
from repro.testing import faults


@dataclass(frozen=True)
class DeltaBatch:
    """One staged base-table change.

    ``sign`` is +1 for inserts and -1 for deletes; ``rows`` are full
    tuples of the changed table (the same exact-row form the maintenance
    layer's summary-delta queries consume).
    """

    seq: int  # the LSN assigned at append time
    table: str  # lower-cased base-table name
    sign: int
    rows: tuple[Row, ...]

    def __post_init__(self) -> None:
        if self.sign not in (+1, -1):
            raise ValueError(f"delta sign must be +1 or -1, got {self.sign}")


class DeltaLog:
    """An append-only, prunable staging area for base-table deltas."""

    def __init__(self) -> None:
        self._batches: list[DeltaBatch] = []
        self._lsn = 0

    def __len__(self) -> int:
        return len(self._batches)

    @property
    def lsn(self) -> int:
        """The logical timestamp of the newest staged change."""
        return self._lsn

    def append(self, table: str, rows: Iterable[Row], sign: int) -> DeltaBatch:
        """Stage one change; assigns and returns the next LSN's batch.

        The fault hook fires before any state changes, so a failed
        append leaves the log untouched (no LSN is consumed).
        """
        faults.fire("delta.append")
        self._lsn += 1
        batch = DeltaBatch(
            self._lsn, table.lower(), sign, tuple(tuple(row) for row in rows)
        )
        self._batches.append(batch)
        return batch

    def pending_for(self, tables: set[str], after: int) -> list[DeltaBatch]:
        """Batches newer than ``after`` touching any of ``tables``, in
        LSN order (the order they must be applied in)."""
        wanted = {name.lower() for name in tables}
        return [
            batch
            for batch in self._batches
            if batch.seq > after and batch.table in wanted
        ]

    def prune(self, keep_after: int) -> int:
        """Drop batches with ``seq <= keep_after`` (every dependent has
        refreshed past them); returns how many were dropped."""
        before = len(self._batches)
        self._batches = [b for b in self._batches if b.seq > keep_after]
        return before - len(self._batches)

    def batches(self) -> list[DeltaBatch]:
        """A snapshot of the staged batches (for persistence/tests)."""
        return list(self._batches)

    def restore(self, lsn: int, batches: Iterable[DeltaBatch]) -> None:
        """Reset the log to a persisted state (see repro.engine.persist)."""
        self._batches = sorted(batches, key=lambda b: b.seq)
        top = self._batches[-1].seq if self._batches else 0
        self._lsn = max(lsn, top)
