"""The delta log: staged base-table changes awaiting deferred refresh.

Under REFRESH IMMEDIATE, every INSERT/DELETE synchronously maintains
every summary table, so ingest latency grows with the number of ASTs.
The delta log breaks that coupling: a change to a base table that any
*deferred* summary depends on is appended here as a :class:`DeltaBatch`
— the raw rows plus a sign — and applied to those summaries later by the
:class:`repro.refresh.scheduler.RefreshScheduler`.

The log keeps one global, monotonically increasing logical timestamp
(``lsn``). Each deferred summary remembers the LSN of its last refresh
(:class:`repro.refresh.policy.RefreshState`); its pending work is exactly
the batches with a later LSN that touch one of its base tables. Batches
every dependent has consumed are pruned.

Beyond the staged batches, the log keeps two cheap per-table maps that
survive pruning:

* :meth:`high_water` — the LSN of the most recent change to a table
  (*any* change, whether or not a batch was staged for it; ingest into
  tables with no deferred dependents advances it via :meth:`note_write`
  without storing rows). This is the freshness oracle the staleness
  gate (:func:`repro.rewrite.index.filter_fresh`) and the server's
  semantic result cache (:mod:`repro.server.result_cache`) read —
  an O(1) dict lookup instead of a pending-batch scan per query.
* :meth:`change_count` — a monotonic count of changes per table, the
  unit ``SET REFRESH AGE`` tolerances are expressed in (staged delta
  batches); the result cache snapshots it to measure how far a cached
  result has lagged behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.engine.table import Row
from repro.testing import faults


@dataclass(frozen=True)
class DeltaBatch:
    """One staged base-table change.

    ``sign`` is +1 for inserts and -1 for deletes; ``rows`` are full
    tuples of the changed table (the same exact-row form the maintenance
    layer's summary-delta queries consume).
    """

    seq: int  # the LSN assigned at append time
    table: str  # lower-cased base-table name
    sign: int
    rows: tuple[Row, ...]

    def __post_init__(self) -> None:
        if self.sign not in (+1, -1):
            raise ValueError(f"delta sign must be +1 or -1, got {self.sign}")


class DeltaLog:
    """An append-only, prunable staging area for base-table deltas."""

    def __init__(self) -> None:
        self._batches: list[DeltaBatch] = []
        self._lsn = 0
        self._high_water: dict[str, int] = {}
        self._change_counts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._batches)

    @property
    def lsn(self) -> int:
        """The logical timestamp of the newest staged change."""
        return self._lsn

    def append(self, table: str, rows: Iterable[Row], sign: int) -> DeltaBatch:
        """Stage one change; assigns and returns the next LSN's batch.

        The fault hook fires before any state changes, so a failed
        append leaves the log untouched (no LSN is consumed).
        """
        faults.fire("delta.append")
        self._lsn += 1
        key = table.lower()
        batch = DeltaBatch(
            self._lsn, key, sign, tuple(tuple(row) for row in rows)
        )
        self._batches.append(batch)
        self._high_water[key] = self._lsn
        self._change_counts[key] = self._change_counts.get(key, 0) + 1
        return batch

    def note_write(self, table: str) -> int:
        """Record a base-table change that stages *no* batch (the table
        has no deferred dependents, so there is nothing to replay later)
        and return the LSN it consumed.

        The change still advances the table's high-water LSN and change
        count: freshness consumers — the staleness gate and the query
        server's semantic result cache — must see every write, not just
        the ones deferred maintenance happens to care about.
        """
        self._lsn += 1
        key = table.lower()
        self._high_water[key] = self._lsn
        self._change_counts[key] = self._change_counts.get(key, 0) + 1
        return self._lsn

    def high_water(self, table: str) -> int:
        """The LSN of the most recent change to ``table`` (0 if never
        changed within this log's lifetime)."""
        return self._high_water.get(table.lower(), 0)

    def high_water_map(self, tables: Iterable[str]) -> dict[str, int]:
        """``{table: high_water LSN}`` for each of ``tables``."""
        return {name.lower(): self.high_water(name) for name in tables}

    def change_count(self, table: str) -> int:
        """Monotonic count of changes to ``table`` (batch-staging units,
        the same unit ``SET REFRESH AGE <n>`` tolerances count in)."""
        return self._change_counts.get(table.lower(), 0)

    def change_counts(self, tables: Iterable[str]) -> dict[str, int]:
        """``{table: change_count}`` for each of ``tables``."""
        return {name.lower(): self.change_count(name) for name in tables}

    def pending_for(self, tables: set[str], after: int) -> list[DeltaBatch]:
        """Batches newer than ``after`` touching any of ``tables``, in
        LSN order (the order they must be applied in)."""
        wanted = {name.lower() for name in tables}
        return [
            batch
            for batch in self._batches
            if batch.seq > after and batch.table in wanted
        ]

    def prune(self, keep_after: int) -> int:
        """Drop batches with ``seq <= keep_after`` (every dependent has
        refreshed past them); returns how many were dropped."""
        before = len(self._batches)
        self._batches = [b for b in self._batches if b.seq > keep_after]
        return before - len(self._batches)

    def batches(self) -> list[DeltaBatch]:
        """A snapshot of the staged batches (for persistence/tests)."""
        return list(self._batches)

    def restore(self, lsn: int, batches: Iterable[DeltaBatch]) -> None:
        """Reset the log to a persisted state (see repro.engine.persist).

        Per-table high-water marks are rebuilt from the surviving
        batches. Marks that belonged to pruned batches are lost, which
        is safe: every dependent refreshed past a pruned batch, so the
        ``high_water <= last_refresh_lsn`` freshness test still answers
        "fresh" — and change counts restart conservatively from the
        surviving batches (the result cache starts empty after a reload,
        so no cached snapshot predates the restored counts).
        """
        self._batches = sorted(batches, key=lambda b: b.seq)
        top = self._batches[-1].seq if self._batches else 0
        self._lsn = max(lsn, top)
        self._high_water = {}
        self._change_counts = {}
        for batch in self._batches:
            self._high_water[batch.table] = batch.seq
            self._change_counts[batch.table] = (
                self._change_counts.get(batch.table, 0) + 1
            )
