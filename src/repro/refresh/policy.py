"""Refresh modes and freshness tolerance — the routing policy layer.

The paper's host system distinguishes REFRESH IMMEDIATE summary tables
(maintained synchronously with every base-table change) from REFRESH
DEFERRED ones (brought up to date later), and gates matching on the
``CURRENT REFRESH AGE`` special register: a query only routes through a
deferred AST when the register says its staleness is acceptable.

This module holds the two value types that policy needs — and nothing
else, so it can be imported from any layer without cycles:

* :class:`RefreshState` — carried by every
  :class:`repro.asts.definition.SummaryTable`: the refresh mode plus the
  staleness record (how many delta batches are staged against it, and
  the delta-log logical timestamp of its last refresh).
* :class:`RefreshAge` — the per-query/per-session freshness tolerance
  set by ``SET REFRESH AGE ANY | 0 | <n>``. ``0`` (the default, matching
  DB2's) admits only fully fresh summaries; ``ANY`` admits arbitrarily
  stale ones; an integer ``n`` admits summaries at most ``n`` staged
  batches behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

IMMEDIATE = "immediate"
DEFERRED = "deferred"


@dataclass
class RefreshState:
    """One summary table's refresh mode and staleness record."""

    mode: str = IMMEDIATE  # IMMEDIATE | DEFERRED
    #: delta-log batches staged against this summary and not yet applied
    pending_deltas: int = 0
    #: the delta log's logical timestamp as of the last refresh (or
    #: materialization — a freshly built AST is exactly current)
    last_refresh_lsn: int = 0
    #: quarantined summaries are excluded from rewrite routing entirely
    #: (their contents are untrusted) until a successful REFRESH SUMMARY
    #: TABLE re-admits them; see docs/ROBUSTNESS.md
    quarantined: bool = False
    quarantine_reason: str = ""

    def __post_init__(self) -> None:
        if self.mode not in (IMMEDIATE, DEFERRED):
            raise ValueError(f"unknown refresh mode {self.mode!r}")

    @property
    def is_deferred(self) -> bool:
        return self.mode == DEFERRED

    @property
    def is_stale(self) -> bool:
        return self.pending_deltas > 0

    def quarantine(self, reason: str) -> None:
        self.quarantined = True
        self.quarantine_reason = reason

    def release_quarantine(self) -> None:
        self.quarantined = False
        self.quarantine_reason = ""

    def describe(self) -> str:
        tag = " [QUARANTINED]" if self.quarantined else ""
        if not self.is_deferred:
            return IMMEDIATE + tag
        return (
            f"{DEFERRED}, {self.pending_deltas} pending delta batch(es), "
            f"refreshed at lsn {self.last_refresh_lsn}{tag}"
        )


@dataclass(frozen=True)
class RefreshAge:
    """A freshness tolerance: how stale may a summary be and still match?

    ``max_pending`` counts staged delta batches; ``None`` means ANY.
    """

    max_pending: int | None = 0

    ANY: ClassVar["RefreshAge"]
    CURRENT: ClassVar["RefreshAge"]

    def __post_init__(self) -> None:
        if self.max_pending is not None and self.max_pending < 0:
            raise ValueError("refresh age must be ANY or a non-negative count")

    def admits(self, pending_deltas: int) -> bool:
        """Is a summary with this many staged batches fresh enough?"""
        if pending_deltas <= 0:
            return True
        return self.max_pending is None or pending_deltas <= self.max_pending

    @property
    def key(self) -> tuple:
        """Hashable form for decision-cache keys."""
        return ("refresh_age", self.max_pending)

    def describe(self) -> str:
        return "ANY" if self.max_pending is None else str(self.max_pending)


RefreshAge.ANY = RefreshAge(None)
RefreshAge.CURRENT = RefreshAge(0)
