"""Deferred summary-table maintenance: delta log, staleness-aware
routing policy, and the background refresh scheduler.

See docs/ALGORITHM.md, "Refresh modes and staleness".
"""

from repro.refresh.log import DeltaBatch, DeltaLog
from repro.refresh.policy import DEFERRED, IMMEDIATE, RefreshAge, RefreshState
from repro.refresh.scheduler import RefreshScheduler

__all__ = [
    "DEFERRED",
    "DeltaBatch",
    "DeltaLog",
    "IMMEDIATE",
    "RefreshAge",
    "RefreshScheduler",
    "RefreshState",
]
