"""CRC-framed temp-file runs for spill-to-disk execution.

When a query's :class:`~repro.resources.broker.MemoryReservation` is
exhausted, the executor partitions its working state — hash-join build
entries, GROUP-BY partial aggregate states — into *runs* on disk and
merges them back with the same derivation-rule algebra the in-memory
path uses (``aggregates.py::merge_states``), so spilled execution is
bit-identical to in-memory execution.

The on-disk format reuses the persistence layer's v2 framing
(``repro.engine.persist``): every line is ``crc32 payload`` where the
payload is one JSON document, so a truncated or corrupted run is
*detected* (and surfaces as a typed error) instead of silently merging
garbage into a query answer.

Values round-trip exactly: JSON preserves ``int`` vs ``float`` (and
Python's shortest-repr float serialization is bit-exact); the engine
types JSON lacks travel tagged —

* ``{"d": "YYYY-MM-DD"}`` — :class:`datetime.date`
* ``{"t": [...]}`` — tuple (group keys)
* ``{"l": [...]}`` — list (the AVG ``[sum, count]`` partial state)
* ``{"s": [...]}`` — set (DISTINCT partial states; the encoding is
  unordered, which is safe because ``merge_states``/``finalize_state``
  are order-independent over sets)

A write failure (a full spill disk, or the armed ``executor.spill``
fault point) leaves the query with no recourse below it on the
degradation ladder; the executor converts it into a typed
:class:`~repro.errors.QueryResourceError`.
"""

from __future__ import annotations

import datetime
import json
import os
import tempfile
import zlib
from typing import Any, Iterable, Iterator

from repro.errors import ExecutionError
from repro.testing import faults

#: spill files land in ``tempfile.gettempdir()`` unless overridden
#: (tests point this at a tmp_path to assert cleanup)
SPILL_DIR: str | None = None


# ----------------------------------------------------------------------
# tagged value encoding
def encode_value(value: Any) -> Any:
    """``value`` → a JSON-ready document (see the module docstring)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime.date):
        return {"d": value.isoformat()}
    if isinstance(value, tuple):
        return {"t": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"s": [encode_value(v) for v in value]}
    raise ExecutionError(
        f"cannot spill value of type {type(value).__name__}"
    )


def decode_value(doc: Any) -> Any:
    """Invert :func:`encode_value`."""
    if not isinstance(doc, dict):
        return doc
    if len(doc) != 1:
        raise ExecutionError(f"bad spill document: {doc!r}")
    tag, payload = next(iter(doc.items()))
    if tag == "d":
        return datetime.date.fromisoformat(payload)
    if tag == "t":
        return tuple(decode_value(v) for v in payload)
    if tag == "l":
        return [decode_value(v) for v in payload]
    if tag == "s":
        return {decode_value(v) for v in payload}
    raise ExecutionError(f"unknown spill tag {tag!r}")


# ----------------------------------------------------------------------
# framing (the persist.py v2 idiom: "crc32 payload" per line)
def _frame(payload: str) -> str:
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x} {payload}"


def _unframe(line: str, path: str, lineno: int) -> str:
    if len(line) < 10 or line[8] != " ":
        raise ExecutionError(
            f"spill run {path} line {lineno}: bad frame"
        )
    try:
        expected = int(line[:8], 16)
    except ValueError:
        raise ExecutionError(
            f"spill run {path} line {lineno}: bad frame CRC"
        ) from None
    payload = line[9:]
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        raise ExecutionError(
            f"spill run {path} line {lineno}: CRC mismatch"
        )
    return payload


# ----------------------------------------------------------------------
class SpillRun:
    """One written run: a framed temp file plus its byte size."""

    __slots__ = ("path", "nbytes", "records")

    def __init__(self, path: str, nbytes: int, records: int):
        self.path = path
        self.nbytes = nbytes
        self.records = records

    def read(self) -> Iterator[Any]:
        """Yield the run's records in write order, CRC-checked."""
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                payload = _unframe(line.rstrip("\n"), self.path, lineno)
                yield decode_value(json.loads(payload))

    def delete(self) -> None:
        try:
            os.remove(self.path)
        except OSError:  # pragma: no cover - temp cleanup is best-effort
            pass


def write_run(records: Iterable[Any], label: str = "spill") -> SpillRun:
    """Write one run of records to a framed temp file.

    Raises ``OSError`` on a full/unwritable spill disk and
    :class:`~repro.testing.faults.InjectedFault` when the
    ``executor.spill`` point is armed — the executor converts either
    into a typed :class:`~repro.errors.QueryResourceError`.
    """
    faults.fire("executor.spill")
    fd, path = tempfile.mkstemp(
        prefix=f"repro-{label}-", suffix=".run", dir=SPILL_DIR
    )
    nbytes = 0
    count = 0
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in records:
                line = _frame(
                    json.dumps(encode_value(record), separators=(",", ":"))
                ) + "\n"
                handle.write(line)
                nbytes += len(line)
                count += 1
            handle.flush()
    except BaseException:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - temp cleanup is best-effort
            pass
        raise
    return SpillRun(path, nbytes, count)
