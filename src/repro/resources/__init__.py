"""Resource accounting: memory budgets, reservations, and spill runs.

The package splits into:

* :mod:`repro.resources.broker` — the process-wide
  :class:`MemoryBroker` (one per process, like the fault injector and
  the ops event ring) and the per-query :class:`MemoryReservation` the
  governor threads through the executor alongside ``QueryBudget``;
* :mod:`repro.resources.spill` — CRC-framed temp-file runs the executor
  spills hash-join builds and GROUP-BY partial states into when a
  reservation is exhausted (same framing as ``repro.engine.persist``).

See ``docs/ROBUSTNESS.md`` ("Resource exhaustion") for the budget
semantics and the degradation ladder placement.
"""

from repro.resources.broker import BROKER, MemoryBroker, MemoryReservation

__all__ = ["BROKER", "MemoryBroker", "MemoryReservation"]
