"""The process-wide memory broker and per-query reservations.

The paper's host DBMS runs queries inside a workload manager that
bounds their memory; this reproduction has no host, so the bound is
cooperative, like the query governor: every memory-hungry site charges
an *estimate* of what it is about to materialize against the query's
:class:`MemoryReservation`, and a denied charge raises a typed
:class:`~repro.errors.MemoryBudgetExceeded` instead of letting the
process walk into ``MemoryError``. Spill-capable operators (the
executor's hash join and GROUPING SETS aggregation) catch the denial
and degrade to disk; everything else lets the typed error propagate.

Two limits compose:

* **per-query** — ``SET QUERY MAXMEM <n> | OFF`` (a session knob,
  threaded through the governor scope exactly like ``QUERY MAXROWS``);
* **process-wide** — the :data:`BROKER` singleton's global byte limit
  (``repro serve --mem-limit``), shared by every concurrent query.

Under global pressure the broker drives *coordinated shedding*: before
denying a charge it asks its registered shedders (the server's result
cache) to free bytes, the refresh scheduler defers fallback recomputes
(:meth:`MemoryBroker.should_defer`), and admission control refuses new
queries while reservations have the limit fully committed
(:meth:`MemoryBroker.admission_blocked`).

Charges are *estimates*, deliberately coarse (see
``engine/table.py::estimate_columns_nbytes``) — the goal is a bound on
the order of magnitude a runaway join build commits to, not malloc-level
truth.
"""

from __future__ import annotations

import threading

from repro.errors import MemoryBudgetExceeded
from repro.testing import faults

#: fraction of the global limit above which the refresh scheduler
#: defers fallback recomputes (recomputation is deferrable work; user
#: queries are not)
DEFER_FRACTION = 0.8


class MemoryBroker:
    """Process-wide byte accounting for query working memory.

    Disarmed (no global limit) the broker is a few attribute reads per
    *reservation*, and queries without a per-query limit never create a
    reservation at all — the ≤3% disarmed-overhead contract the
    governor already meets extends to memory budgets.
    """

    def __init__(self, limit: int | None = None):
        self._lock = threading.Lock()
        self.limit = limit
        self._reserved = 0
        self._peak = 0
        #: callables ``shed(target_bytes) -> freed_bytes`` consulted
        #: before a global charge is denied (the server's result cache)
        self._shedders: list = []
        self.denials = 0
        self.sheds = 0
        self.shed_bytes = 0

    # ------------------------------------------------------------------
    # configuration
    @property
    def limited(self) -> bool:
        return self.limit is not None

    def set_limit(self, nbytes: int | None) -> None:
        """Set (or clear, with ``None``) the process-wide byte limit."""
        if nbytes is not None and nbytes < 1:
            raise ValueError("memory limit must be >= 1 byte (or None)")
        with self._lock:
            self.limit = nbytes

    def add_shedder(self, shedder) -> None:
        with self._lock:
            if shedder not in self._shedders:
                self._shedders.append(shedder)

    def remove_shedder(self, shedder) -> None:
        with self._lock:
            if shedder in self._shedders:
                self._shedders.remove(shedder)

    # ------------------------------------------------------------------
    # accounting
    def reserved(self) -> int:
        return self._reserved

    def peak(self) -> int:
        return self._peak

    def _charge_global(self, nbytes: int) -> bool:
        """Try to commit ``nbytes`` against the global limit, shedding
        reclaimable memory first when the grant would not fit. Returns
        False when the charge still does not fit after shedding."""
        with self._lock:
            limit = self.limit
            if limit is None or self._reserved + nbytes <= limit:
                self._reserved += nbytes
                if self._reserved > self._peak:
                    self._peak = self._reserved
                return True
            shedders = list(self._shedders)
            deficit = self._reserved + nbytes - limit
        freed = 0
        for shedder in shedders:
            try:
                freed += int(shedder(deficit - freed))
            except Exception:  # noqa: BLE001 - shedding is best-effort
                continue
            if freed >= deficit:
                break
        with self._lock:
            if freed:
                self.sheds += 1
                self.shed_bytes += freed
            limit = self.limit
            # Shedders free *reclaimable* memory (cached results) that was
            # never charged to this ledger, so freeing the full deficit
            # grants the charge even though ``reserved`` transiently
            # exceeds the limit — admission stays gated until it drains.
            if (
                limit is None
                or self._reserved + nbytes <= limit
                or freed >= deficit
            ):
                self._reserved += nbytes
                if self._reserved > self._peak:
                    self._peak = self._reserved
                return True
            self.denials += 1
            return False

    def _release_global(self, nbytes: int) -> None:
        with self._lock:
            self._reserved = max(0, self._reserved - nbytes)

    # ------------------------------------------------------------------
    # pressure signals (the coordinated-shedding surface)
    def should_defer(self) -> bool:
        """True when deferrable background work (scheduler fallback
        recomputes) should wait for pressure to ease."""
        limit = self.limit
        if limit is None:
            return False
        return self._reserved >= limit * DEFER_FRACTION

    def admission_blocked(self) -> bool:
        """True when running queries have the global limit fully
        committed — admitting more work would only queue denials."""
        limit = self.limit
        if limit is None:
            return False
        return self._reserved >= limit

    # ------------------------------------------------------------------
    def reserve(self, limit: int | None = None) -> "MemoryReservation":
        """A fresh per-query reservation (``limit`` = SET QUERY MAXMEM,
        ``None`` ⇒ bounded only by the global limit)."""
        return MemoryReservation(self, limit)

    def snapshot(self) -> dict:
        """JSON-ready state for the ``status`` op / ``\\status``."""
        with self._lock:
            return {
                "limit": self.limit,
                "reserved_bytes": self._reserved,
                "peak_bytes": self._peak,
                "denials": self.denials,
                "sheds": self.sheds,
                "shed_bytes": self.shed_bytes,
            }

    def reset(self) -> None:
        """Test hook: clear limits, accounting, and shedders."""
        with self._lock:
            self.limit = None
            self._reserved = 0
            self._peak = 0
            self._shedders.clear()
            self.denials = 0
            self.sheds = 0
            self.shed_bytes = 0


class MemoryReservation:
    """One query's memory account, carried on its ``QueryBudget``.

    ``charge`` either commits the bytes (against the per-query limit
    first, then the broker's global limit) or raises
    :class:`~repro.errors.MemoryBudgetExceeded`; spill-capable callers
    catch the denial and degrade. ``close`` returns everything still
    held to the broker — the database's execute path calls it in a
    ``finally``, so a cancelled or failed query never leaks reserved
    bytes.
    """

    __slots__ = (
        "broker", "limit", "used", "peak",
        "spills", "spill_runs", "spilled_bytes", "_closed",
    )

    def __init__(self, broker: MemoryBroker, limit: int | None = None):
        self.broker = broker
        self.limit = limit
        self.used = 0
        self.peak = 0
        self.spills = 0
        self.spill_runs = 0
        self.spilled_bytes = 0
        self._closed = False

    def charge(self, nbytes: int) -> None:
        """Commit ``nbytes`` of working memory to this query."""
        if nbytes <= 0:
            return
        try:
            faults.fire("mem.reserve")
        except faults.InjectedFault as error:
            # An injected denial models pressure deterministically —
            # same typed error, same spill recovery, no tiny budgets.
            raise MemoryBudgetExceeded(
                f"memory reservation denied (injected): {nbytes} byte(s) "
                f"requested with {self.used} reserved"
            ) from error
        if self.limit is not None and self.used + nbytes > self.limit:
            raise MemoryBudgetExceeded(
                f"query memory budget exceeded: {self.used + nbytes} "
                f"byte(s) needed, QUERY MAXMEM is {self.limit}"
            )
        if not self.broker._charge_global(nbytes):
            raise MemoryBudgetExceeded(
                f"global memory limit exceeded: {nbytes} byte(s) "
                f"requested with {self.broker.reserved()} of "
                f"{self.broker.limit} reserved process-wide"
            )
        self.used += nbytes
        if self.used > self.peak:
            self.peak = self.used

    def headroom(self) -> int | None:
        """Bytes still grantable right now (``None`` ⇒ unbounded).

        The spill paths size their runs/segments from this, so a spilled
        operator's working set stays inside what the budget allows."""
        candidates = []
        if self.limit is not None:
            candidates.append(self.limit - self.used)
        limit = self.broker.limit
        if limit is not None:
            candidates.append(limit - self.broker.reserved())
        if not candidates:
            return None
        return max(0, min(candidates))

    def release(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        nbytes = min(nbytes, self.used)
        self.used -= nbytes
        self.broker._release_global(nbytes)

    def note_spill(self, runs: int, nbytes: int) -> None:
        """Record one spill event (``runs`` temp-file runs written,
        ``nbytes`` framed bytes) for stats and EXPLAIN ANALYZE."""
        self.spills += 1
        self.spill_runs += runs
        self.spilled_bytes += nbytes

    def close(self) -> None:
        """Return everything still held to the broker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.used:
            self.broker._release_global(self.used)
            self.used = 0

    def describe_lines(self) -> list[str]:
        limit = "off" if self.limit is None else f"{self.limit} bytes"
        lines = [
            f"memory: {self.peak} byte(s) peak reserved "
            f"(query maxmem {limit})"
        ]
        if self.spills:
            lines.append(
                f"spills: {self.spills} operator(s) spilled "
                f"{self.spilled_bytes} byte(s) across "
                f"{self.spill_runs} run(s)"
            )
        return lines


#: the process-global broker every reservation reports to (mirrors
#: ``faults.INJECTOR`` and ``events.LOG``)
BROKER = MemoryBroker()
