"""Structural fingerprints of bound QGM graphs.

The rewrite decision cache (see :mod:`repro.rewrite.cache`) needs a key
that is stable across repeated bindings of the same query: two
independently parsed+bound graphs of equivalent SQL must produce equal
fingerprints, and any difference that could change the matcher's outcome
must produce different ones.

A fingerprint is a nested tuple built from the graph in topological
(children-first) order: per box its kind, scanned table (for leaves),
output columns with *normalized* defining expressions, normalized and
canonically ordered predicates, DISTINCT flag, grouping items/sets, and
the quantifier wiring as (name, child index) pairs — plus the graph's
presentation-level ORDER BY/LIMIT. Expressions are normalized with
:func:`repro.expr.normalize.normalize`, so syntactic noise the matcher
ignores (operand order, ``x+0``…) does not fragment the cache.

Keys compare by full structural equality (no truncated digests), so a
hash collision can never alias two different queries to one cache slot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.expr.normalize import normalize, sort_key
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
)


@dataclass(frozen=True)
class GraphFingerprint:
    """A hashable structural key for one bound :class:`QueryGraph`."""

    key: tuple

    def hexdigest(self) -> str:
        """A short stable digest for display (EXPLAIN, logs)."""
        return hashlib.sha1(repr(self.key).encode()).hexdigest()[:12]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphFingerprint({self.hexdigest()})"


def fingerprint(graph: QueryGraph) -> GraphFingerprint:
    """The structural fingerprint of ``graph``."""
    boxes = graph.boxes()
    index = {id(box): position for position, box in enumerate(boxes)}
    key = (
        tuple(_box_key(box, index) for box in boxes),
        index[id(graph.root)],
        tuple(graph.order_by),
        graph.limit,
    )
    return GraphFingerprint(key)


def _box_key(box: QGMBox, index: dict[int, int]) -> tuple:
    outputs = tuple(
        (
            qcl.name,
            None if qcl.expr is None else normalize(qcl.expr),
            qcl.nullable,
        )
        for qcl in box.outputs
    )
    quantifiers = tuple(
        (quantifier.name, index[id(quantifier.box)])
        for quantifier in box.quantifiers()
    )
    if isinstance(box, BaseTableBox):
        return ("base", box.table_name.lower(), outputs)
    if isinstance(box, SelectBox):
        predicates = tuple(
            sorted((normalize(p) for p in box.predicates), key=sort_key)
        )
        return ("select", quantifiers, outputs, predicates, box.distinct)
    if isinstance(box, GroupByBox):
        return (
            "groupby",
            quantifiers,
            outputs,
            box.grouping_items,
            box.grouping_sets,
        )
    if isinstance(box, UnionAllBox):
        return ("union", quantifiers, outputs)
    # Unknown box kinds still fingerprint deterministically; they simply
    # distinguish by kind, wiring, and outputs.
    return (box.kind, quantifiers, outputs)
