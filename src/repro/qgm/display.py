"""Text rendering of QGM graphs (the paper's Figure 3).

``render_graph`` draws each box with its type, output columns and
predicates, indented by depth — a faithful text version of the boxes-and-
arrows figures. Used by examples, the explain API, and tests.
"""

from __future__ import annotations

from repro.matching.framework import SubsumerRef
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
)
from repro.qgm.unparse import render_expr


def render_graph(graph: QueryGraph | QGMBox) -> str:
    """A multi-line drawing of the graph, root at the top."""
    root = graph.root if isinstance(graph, QueryGraph) else graph
    lines: list[str] = []
    _render_box(root, "", None, lines, seen=set())
    return "\n".join(lines)


def _render_box(
    box: QGMBox,
    indent: str,
    via: str | None,
    lines: list[str],
    seen: set[int],
) -> None:
    label = f"{indent}{'(' + via + ') ' if via else ''}{_describe_box(box)}"
    if id(box) in seen:
        lines.append(f"{label}  [shared, shown above]")
        return
    seen.add(id(box))
    lines.append(label)
    detail_indent = indent + "    "
    for line in _box_details(box):
        lines.append(f"{detail_indent}{line}")
    for quantifier in box.quantifiers():
        _render_box(quantifier.box, indent + "  ", quantifier.name, lines, seen)


def _describe_box(box: QGMBox) -> str:
    if isinstance(box, BaseTableBox):
        return f"BASE {box.name} [{box.table_name}]"
    if isinstance(box, SelectBox):
        kind = "SELECT DISTINCT" if box.distinct else "SELECT"
        return f"{kind} {box.name}"
    if isinstance(box, GroupByBox):
        return f"GROUP-BY {box.name}"
    if isinstance(box, UnionAllBox):
        return f"UNION-ALL {box.name}"
    if isinstance(box, SubsumerRef):
        return f"SUBSUMER {box.name}"
    return f"BOX {box.name}"


def _box_details(box: QGMBox) -> list[str]:
    lines: list[str] = []
    if isinstance(box, BaseTableBox):
        lines.append("columns: " + ", ".join(box.output_names))
        return lines
    if isinstance(box, (SubsumerRef, UnionAllBox)):
        lines.append("columns: " + ", ".join(box.output_names))
        return lines
    outputs = ", ".join(
        f"{qcl.name} := {render_expr(qcl.expr)}" if qcl.expr is not None else qcl.name
        for qcl in box.outputs
    )
    lines.append(f"output: {outputs}")
    if isinstance(box, SelectBox) and box.predicates:
        predicates = " AND ".join(render_expr(p) for p in box.predicates)
        lines.append(f"predicates: {predicates}")
    if isinstance(box, GroupByBox):
        if box.is_multidimensional:
            rendered = ", ".join(
                "(" + ", ".join(s) + ")" for s in box.grouping_sets
            )
            lines.append(f"grouping sets: {rendered}")
        else:
            lines.append(f"group by: {', '.join(box.grouping_items) or '()'}")
    return lines
