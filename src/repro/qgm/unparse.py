"""QGM → SQL rendering.

Renders a query graph back to SQL text that (a) reads like the paper's
``NewQ`` examples and (b) round-trips through our own parser/binder (this
is property-tested: re-binding and executing the rendered SQL yields the
same result table).

The SELECT → GROUP-BY → SELECT sandwich is collapsed into a single block
where possible. Scalar-subquery quantifiers of the upper box render as
derived tables and their columns join the GROUP BY list — exactly what
the paper's NewQ10 does (``group by flid, totcnt``).
"""

from __future__ import annotations

import datetime

from repro.errors import ReproError
from repro.expr.nodes import (
    AggCall,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    NaryOp,
    UnaryOp,
)
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
)

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "cmp": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
    "neg": 7,
    "atom": 8,
}


def to_sql(graph: QueryGraph | QGMBox, pretty: bool = False) -> str:
    """Render a graph (or a single box subtree) as SQL text.

    ``pretty=True`` breaks the text at top-level clause keywords for
    display; the result still parses identically.
    """
    box = graph.root if isinstance(graph, QueryGraph) else graph
    sql = _render_box(box)
    if isinstance(graph, QueryGraph) and graph.order_by:
        keys = ", ".join(
            name if ascending else f"{name} DESC"
            for name, ascending in graph.order_by
        )
        sql = f"{sql} ORDER BY {keys}"
    if isinstance(graph, QueryGraph) and graph.limit is not None:
        sql = f"{sql} LIMIT {graph.limit}"
    if pretty:
        sql = format_sql(sql)
    return sql


def format_sql(sql: str) -> str:
    """Line-break a rendered statement at top-level clause keywords."""
    breakers = (
        "FROM", "WHERE", "GROUP BY", "HAVING", "ORDER BY", "LIMIT",
        "UNION ALL",
    )
    out: list[str] = []
    depth = 0
    in_string = False
    index = 0
    while index < len(sql):
        char = sql[index]
        if in_string:
            out.append(char)
            in_string = char != "'" or (
                index + 1 < len(sql) and sql[index + 1] == "'"
            )
            index += 1
            continue
        if char == "'":
            in_string = True
            out.append(char)
            index += 1
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if depth == 0 and char == " ":
            rest = sql[index + 1 :]
            if any(rest.startswith(keyword + " ") or rest == keyword
                   for keyword in breakers):
                out.append("\n")
                index += 1
                continue
        out.append(char)
        index += 1
    return "".join(out)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def render_expr(expr: Expr, precedence: int = 0) -> str:
    text, own = _render_expr(expr)
    if own < precedence:
        return f"({text})"
    return text


def _render_expr(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, Literal):
        return _render_literal(expr.value), _PRECEDENCE["atom"]
    if isinstance(expr, ColumnRef):
        if expr.qualifier is None:
            return expr.name, _PRECEDENCE["atom"]
        return f"{expr.qualifier}.{expr.name}", _PRECEDENCE["atom"]
    if isinstance(expr, FuncCall):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})", _PRECEDENCE["atom"]
    if isinstance(expr, AggCall):
        if expr.arg is None:
            return "COUNT(*)", _PRECEDENCE["atom"]
        inner = render_expr(expr.arg)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.func.upper()}({inner})", _PRECEDENCE["atom"]
    if isinstance(expr, NaryOp):
        if expr.op in ("and", "or"):
            own = _PRECEDENCE[expr.op]
            joined = f" {expr.op.upper()} ".join(
                render_expr(o, own + 1) for o in expr.operands
            )
            return joined, own
        own = _PRECEDENCE[expr.op]
        joined = f" {expr.op} ".join(render_expr(o, own) for o in expr.operands)
        return joined, own
    if isinstance(expr, BinaryOp):
        if expr.op in ("-", "/", "%"):
            own = _PRECEDENCE[expr.op]
            left = render_expr(expr.left, own)
            right = render_expr(expr.right, own + 1)  # left-associative
            return f"{left} {expr.op} {right}", own
        own = _PRECEDENCE["cmp"]
        left = render_expr(expr.left, own + 1)
        right = render_expr(expr.right, own + 1)
        return f"{left} {expr.op} {right}", own
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            own = _PRECEDENCE["neg"]
            return f"-{render_expr(expr.operand, own)}", own
        own = _PRECEDENCE["not"]
        return f"NOT {render_expr(expr.operand, own + 1)}", own
    if isinstance(expr, IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        inner = render_expr(expr.operand, _PRECEDENCE["cmp"] + 1)
        return f"{inner} {keyword}", _PRECEDENCE["cmp"]
    if isinstance(expr, InList):
        keyword = "NOT IN" if expr.negated else "IN"
        inner = render_expr(expr.operand, _PRECEDENCE["cmp"] + 1)
        items = ", ".join(render_expr(i) for i in expr.items)
        return f"{inner} {keyword} ({items})", _PRECEDENCE["cmp"]
    if isinstance(expr, CaseWhen):
        whens = " ".join(
            f"WHEN {render_expr(c)} THEN {render_expr(v)}" for c, v in expr.pairs()
        )
        return f"CASE {whens} ELSE {render_expr(expr.default)} END", _PRECEDENCE["atom"]
    raise ReproError(f"cannot render expression {expr!r}")


def _render_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    return repr(value)


# ----------------------------------------------------------------------
# Boxes
# ----------------------------------------------------------------------
def _render_box(box: QGMBox) -> str:
    if isinstance(box, BaseTableBox):
        # A bare table is not a statement; wrap in SELECT *.
        return f"SELECT * FROM {box.table_name}"
    if isinstance(box, SelectBox):
        sandwich = _as_sandwich(box)
        if sandwich is not None:
            return sandwich
        return _render_plain_select(box)
    if isinstance(box, GroupByBox):
        return _render_groupby_block(box)
    if isinstance(box, UnionAllBox):
        return " UNION ALL ".join(
            _render_union_branch(q.box, box) for q in box.quantifiers()
        )
    raise ReproError(f"cannot render box {box!r}")


def _render_union_branch(child: QGMBox, union: UnionAllBox) -> str:
    rendered = _render_box(child)
    if child.output_names != union.output_names:
        # Re-alias through a derived table so every branch exposes the
        # union's column names.
        items = ", ".join(
            f"{inner} AS {outer}" if inner != outer else inner
            for inner, outer in zip(child.output_names, union.output_names)
        )
        return f"SELECT {items} FROM ({rendered}) AS u"
    return rendered


def _render_from_item(quantifier) -> str:
    child = quantifier.box
    if isinstance(child, BaseTableBox):
        if quantifier.name.lower() == child.table_name.lower():
            return child.table_name
        return f"{child.table_name} AS {quantifier.name}"
    return f"({_render_box(child)}) AS {quantifier.name}"


def _render_plain_select(box: SelectBox) -> str:
    items = ", ".join(
        _render_select_item(qcl.expr, qcl.name) for qcl in box.outputs
    )
    from_clause = ", ".join(_render_from_item(q) for q in box.quantifiers())
    head = "SELECT DISTINCT" if box.distinct else "SELECT"
    sql = f"{head} {items} FROM {from_clause}"
    if box.predicates:
        where = " AND ".join(render_expr(p, _PRECEDENCE["and"]) for p in box.predicates)
        sql += f" WHERE {where}"
    return sql


def _render_select_item(expr: Expr, name: str) -> str:
    rendered = render_expr(expr)
    if isinstance(expr, ColumnRef) and expr.name.lower() == name.lower():
        return rendered
    return f"{rendered} AS {name}"


def _render_groupby_block(box: GroupByBox) -> str:
    child = box.child_quantifier
    items = ", ".join(
        _render_select_item(qcl.expr, qcl.name) for qcl in box.outputs
    )
    sql = f"SELECT {items} FROM {_render_from_item(child)}"
    sql += f" {_render_group_by_clause(box, lambda name: ColumnRef(child.name, _grouping_source(box, name)))}"
    return sql


def _grouping_source(box: GroupByBox, name: str) -> str:
    expr = box.output(name).expr
    if isinstance(expr, ColumnRef):
        return expr.name
    raise ReproError(f"grouping output {name!r} is not simple")


def _render_group_by_clause(box: GroupByBox, expr_for) -> str:
    if not box.is_multidimensional:
        (only_set,) = box.grouping_sets
        if not only_set:
            # Grand total: GROUP BY () — render via GROUPING SETS for
            # parser compatibility.
            return "GROUP BY GROUPING SETS (())"
        keys = ", ".join(render_expr(expr_for(name)) for name in only_set)
        return f"GROUP BY {keys}"
    rendered_sets = []
    for grouping_set in box.grouping_sets:
        inner = ", ".join(render_expr(expr_for(name)) for name in grouping_set)
        rendered_sets.append(f"({inner})")
    return f"GROUP BY GROUPING SETS ({', '.join(rendered_sets)})"


def _as_sandwich(upper: SelectBox) -> str | None:
    """Collapse SELECT(upper) -> GROUP-BY -> SELECT(lower) into one block."""
    grouped = [
        q for q in upper.quantifiers() if isinstance(q.box, GroupByBox)
    ]
    if len(grouped) != 1:
        return None
    gq = grouped[0]
    groupby: GroupByBox = gq.box
    lower = groupby.child_quantifier.box
    if not isinstance(lower, SelectBox) or lower.distinct:
        return None
    extra_quantifiers = [q for q in upper.quantifiers() if q is not gq]
    if any(isinstance(q.box, GroupByBox) for q in extra_quantifiers):
        return None
    lower_q = groupby.child_quantifier

    def expand(expr: Expr) -> Expr | None:
        """Map an upper-box expression into the lower box's context;
        aggregate refs become aggregate calls over lower expressions."""

        def visit(node: Expr) -> Expr | None:
            if not isinstance(node, ColumnRef):
                return None
            if node.qualifier != gq.name:
                return node  # scalar-subquery quantifier of the upper box
            gb_expr = groupby.output(node.name).expr
            if isinstance(gb_expr, AggCall):
                if gb_expr.arg is None:
                    return gb_expr
                lower_expr = lower.output(gb_expr.arg.name).expr
                return AggCall(gb_expr.func, lower_expr, gb_expr.distinct)
            lower_expr = lower.output(gb_expr.name).expr
            return lower_expr

        return expr.transform(visit)

    select_items = []
    group_extra: list[str] = []
    for qcl in upper.outputs:
        expanded = expand(qcl.expr)
        select_items.append(_render_select_item(expanded, qcl.name))
        for ref in expanded.column_refs():
            if any(ref.qualifier == q.name for q in extra_quantifiers):
                rendered = render_expr(ref)
                if rendered not in group_extra:
                    group_extra.append(rendered)

    from_items = [_render_from_item(q) for q in lower.quantifiers()]
    from_items.extend(_render_from_item(q) for q in extra_quantifiers)
    head = "SELECT DISTINCT" if upper.distinct else "SELECT"
    sql = f"{head} {', '.join(select_items)} FROM {', '.join(from_items)}"
    if lower.predicates:
        where = " AND ".join(
            render_expr(p, _PRECEDENCE["and"]) for p in lower.predicates
        )
        sql += f" WHERE {where}"

    def grouping_expr(name: str) -> Expr:
        source = _grouping_source(groupby, name)
        return lower.output(source).expr

    clause = _render_group_by_clause(groupby, grouping_expr)
    if group_extra:
        if "GROUPING SETS" in clause:
            return None  # cannot append plain keys to a supergroup cleanly
        clause += ", " + ", ".join(group_extra)
    sql += f" {clause}"
    if upper.predicates:
        having = " AND ".join(
            render_expr(expand(p), _PRECEDENCE["and"]) for p in upper.predicates
        )
        sql += f" HAVING {having}"
    return sql
