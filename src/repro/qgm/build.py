"""SQL parse tree → QGM graph (the binder).

An aggregated block becomes the SELECT → GROUP-BY → SELECT sandwich of the
paper's Figure 3:

* the lower SELECT box joins the FROM items, applies WHERE, and computes
  every grouping expression and aggregate argument as a QCL (GROUP-BY
  boxes only ever see *simple* input columns);
* the GROUP-BY box groups and computes the aggregates (with canonical
  grouping sets when ROLLUP/CUBE/GROUPING SETS are present);
* the upper SELECT box applies HAVING and computes the final output
  expressions over grouping columns and aggregate results.

Scalar subqueries become ordinary quantifiers over single-row subgraphs
(the paper excludes correlation, which makes this sound); the binder
requires them to be scalar aggregates so they always produce exactly one
row.
"""

from __future__ import annotations

from repro.catalog.schema import Catalog
from repro.errors import BindError, UnsupportedSqlError
from repro.governor import scope as governor_scope
from repro.expr.nodes import (
    AggCall,
    ColumnRef,
    Expr,
    split_conjuncts,
)
from repro.expr.normalize import normalize
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QCL,
    QGMBox,
    QueryGraph,
    SelectBox,
    UnionAllBox,
    cross_combine,
    expand_cube,
    expand_rollup,
    expr_nullable,
)
from repro.sql.ast import (
    Cube,
    DerivedTableRef,
    GroupingSets,
    Rollup,
    SelectStatement,
    SimpleGrouping,
    SubqueryExpr,
    TableRef,
    UnionAll,
)
from repro.sql.parser import parse


def build_graph(
    statement: SelectStatement | str, catalog: Catalog, label: str = "Q"
) -> QueryGraph:
    """Bind a statement (or SQL text) against ``catalog``.

    ``label`` suffixes generated box names (the paper uses Q for queries
    and A for ASTs), which makes debug output line up with its figures.
    """
    if isinstance(statement, str):
        statement = parse(statement)
    binder = _Binder(catalog, label)
    if isinstance(statement, UnionAll):
        root = binder.build_union(statement)
    else:
        root = binder.build_block(statement, is_top=True)
    graph = QueryGraph(root, catalog)
    graph.order_by = binder.top_order_by
    graph.limit = binder.top_limit
    graph.validate()
    return graph


class _Scope:
    """Name resolution over a set of quantifiers (case-insensitive)."""

    def __init__(self) -> None:
        self._bindings: dict[str, tuple[str, QGMBox]] = {}
        self.order: list[tuple[str, QGMBox]] = []

    def bind(self, name: str, box: QGMBox) -> None:
        key = name.lower()
        if key in self._bindings:
            raise BindError(f"duplicate table name or alias {name!r} in FROM")
        self._bindings[key] = (name, box)
        self.order.append((name, box))

    def resolve_qualified(self, qualifier: str, column: str) -> ColumnRef:
        key = qualifier.lower()
        if key not in self._bindings:
            raise BindError(f"unknown table or alias {qualifier!r}")
        name, box = self._bindings[key]
        matched = _find_column(box, column)
        if matched is None:
            raise BindError(f"no column {column!r} in {qualifier!r}")
        return ColumnRef(name, matched)

    def resolve_unqualified(self, column: str) -> ColumnRef:
        hits: list[ColumnRef] = []
        for name, box in self.order:
            matched = _find_column(box, column)
            if matched is not None:
                hits.append(ColumnRef(name, matched))
        if not hits:
            raise BindError(f"unknown column {column!r}")
        if len(hits) > 1:
            owners = ", ".join(ref.qualifier or "?" for ref in hits)
            raise BindError(f"ambiguous column {column!r} (in {owners})")
        return hits[0]


def _find_column(box: QGMBox, column: str) -> str | None:
    wanted = column.lower()
    for qcl in box.outputs:
        if qcl.name.lower() == wanted:
            return qcl.name
    return None


class _Binder:
    def __init__(self, catalog: Catalog, label: str):
        self._catalog = catalog
        self._label = label
        self._box_counter = 0
        self._derived_counter = 0
        self.top_order_by: list[tuple[str, bool]] = []
        self.top_limit: int | None = None
        self._order_binder = None  # set by the most recent block builder
        # Governor scope, read once: each block built ticks the bind
        # phase (token checks only — deadlines never kill a bind).
        self._budget = governor_scope.current()

    # ------------------------------------------------------------------
    def _box_name(self, kind: str) -> str:
        self._box_counter += 1
        return f"{kind}-{self._box_counter}{self._label}"

    def build_union(self, union: UnionAll) -> QGMBox:
        box = UnionAllBox(self._box_name("Union"))
        for index, branch in enumerate(union.branches, start=1):
            child = self.build_block(branch)
            if index > 1 and len(child.outputs) != len(box.outputs):
                raise BindError(
                    "UNION ALL branches must have the same number of columns"
                )
            box.add_branch(f"b{index}", child)
        return box

    def build_block(self, stmt: SelectStatement, is_top: bool = False) -> QGMBox:
        if self._budget is not None:
            self._budget.tick(1, "bind")
        if stmt.order_by and not is_top:
            raise UnsupportedSqlError("ORDER BY is only supported at the top level")
        if stmt.limit is not None and not is_top:
            raise UnsupportedSqlError("LIMIT is only supported at the top level")

        scope = _Scope()
        from_boxes: list[tuple[str, QGMBox]] = []
        for item in stmt.from_items:
            name, box = self._build_from_item(item)
            scope.bind(name, box)
            from_boxes.append((name, box))

        aggregated = self._is_aggregated(stmt)
        if aggregated:
            root = self._build_aggregated_block(stmt, scope, from_boxes)
        elif stmt.distinct and not stmt.select_star:
            # Footnote 2 of the paper: SELECT DISTINCT eliminates
            # duplicates just like GROUP-BY. Building it as a GROUP BY
            # over every output expression lets the GROUP-BY matching
            # patterns handle DISTINCT queries against grouped ASTs.
            root = self._build_aggregated_block(
                _distinct_as_group_by(stmt), scope, from_boxes
            )
        else:
            root = self._build_plain_block(stmt, scope, from_boxes)
        if is_top:
            self.top_order_by = self._bind_order_by(stmt, root)
            self.top_limit = stmt.limit
        return root

    def _build_from_item(self, item: TableRef | DerivedTableRef) -> tuple[str, QGMBox]:
        if isinstance(item, TableRef):
            schema = self._catalog.table(item.name)
            box = BaseTableBox(schema.name, schema)
            return item.alias or schema.name, box
        if isinstance(item.query, UnionAll):
            box: QGMBox = self.build_union(item.query)
        else:
            box = self.build_block(item.query)
        alias = item.alias
        if alias is None:
            self._derived_counter += 1
            alias = f"dt{self._derived_counter}"
        return alias, box

    @staticmethod
    def _is_aggregated(stmt: SelectStatement) -> bool:
        if stmt.group_by:
            return True
        candidates = [item.expr for item in stmt.items]
        if stmt.having is not None:
            candidates.append(stmt.having)
        return any(expr.contains_aggregate() for expr in candidates)

    # ------------------------------------------------------------------
    # Name resolution and scalar subqueries
    # ------------------------------------------------------------------
    def _resolve(
        self,
        expr: Expr,
        scope: _Scope,
        sink: "_SubquerySink",
    ) -> Expr:
        def visit(node: Expr) -> Expr | None:
            if isinstance(node, ColumnRef):
                if node.qualifier is None:
                    return scope.resolve_unqualified(node.name)
                return scope.resolve_qualified(node.qualifier, node.name)
            if isinstance(node, SubqueryExpr):
                return sink.install(node)
            return None

        return expr.transform(visit)

    # ------------------------------------------------------------------
    # Non-aggregated block
    # ------------------------------------------------------------------
    def _build_plain_block(
        self,
        stmt: SelectStatement,
        scope: _Scope,
        from_boxes: list[tuple[str, QGMBox]],
    ) -> QGMBox:
        box = SelectBox(self._box_name("Sel"))
        for name, child in from_boxes:
            box.add_quantifier(name, child)
        sink = _SubquerySink(self, box)
        if stmt.where is not None:
            for predicate in split_conjuncts(stmt.where):
                bound = self._resolve(predicate, scope, sink)
                if bound.contains_aggregate():
                    raise BindError("aggregates are not allowed in WHERE")
                box.add_predicate(bound)

        self._order_binder = lambda expr: self._resolve(
            expr, scope, _ReadOnlySink()
        )
        namer = _OutputNamer()
        if stmt.select_star:
            for name, child in from_boxes:
                for qcl in child.outputs:
                    ref = ColumnRef(name, qcl.name)
                    box.add_output(QCL(namer.name_for(ref, None), ref, qcl.nullable))
        else:
            for item in stmt.items:
                resolved = self._resolve(item.expr, scope, sink)
                if resolved.contains_aggregate():
                    raise BindError("aggregate not allowed without GROUP BY context")
                nullable = expr_nullable(resolved, _nullable_resolver(box))
                box.add_output(QCL(namer.name_for(resolved, item.alias), resolved, nullable))
        box.distinct = stmt.distinct
        return box

    # ------------------------------------------------------------------
    # Aggregated block: SELECT -> GROUP-BY -> SELECT
    # ------------------------------------------------------------------
    def _build_aggregated_block(
        self,
        stmt: SelectStatement,
        scope: _Scope,
        from_boxes: list[tuple[str, QGMBox]],
    ) -> QGMBox:
        if stmt.select_star:
            raise BindError("SELECT * is not allowed in a grouped query")

        lower = SelectBox(self._box_name("Sel"))
        for name, child in from_boxes:
            lower.add_quantifier(name, child)
        lower_sink = _SubquerySink(self, lower)
        if stmt.where is not None:
            for predicate in split_conjuncts(stmt.where):
                bound = self._resolve(predicate, scope, lower_sink)
                if bound.contains_aggregate():
                    raise BindError("aggregates are not allowed in WHERE")
                lower.add_predicate(bound)

        # ---- grouping expressions -> lower QCLs ----
        alias_by_norm: dict[Expr, str] = {}
        for item in stmt.items:
            if not item.alias or item.expr.contains_aggregate():
                continue
            try:
                resolved_item = self._resolve(item.expr, scope, _ReadOnlySink())
            except BindError:
                continue  # contains a subquery or an upper-level name
            alias_by_norm.setdefault(normalize(resolved_item), item.alias)
        lower_namer = _OutputNamer()
        lower_qcl_by_norm: dict[Expr, str] = {}

        def lower_qcl_for(resolved: Expr, alias_hint: str | None) -> str:
            key = normalize(resolved)
            if key in lower_qcl_by_norm:
                return lower_qcl_by_norm[key]
            hint = alias_hint or alias_by_norm.get(key)
            name = lower_namer.name_for(resolved, hint)
            nullable = expr_nullable(resolved, _nullable_resolver(lower))
            lower.add_output(QCL(name, resolved, nullable))
            lower_qcl_by_norm[key] = name
            return name

        element_sets: list[tuple[tuple[str, ...], ...]] = []
        grouping_names: list[str] = []

        def grouping_name(expr: Expr) -> str:
            resolved = self._resolve(expr, scope, lower_sink)
            name = lower_qcl_for(resolved, None)
            if name not in grouping_names:
                grouping_names.append(name)
            return name

        for element in stmt.group_by:
            if isinstance(element, SimpleGrouping):
                element_sets.append(((grouping_name(element.expr),),))
            elif isinstance(element, Rollup):
                names = tuple(grouping_name(e) for e in element.items)
                element_sets.append(expand_rollup(names))
            elif isinstance(element, Cube):
                names = tuple(grouping_name(e) for e in element.items)
                element_sets.append(expand_cube(names))
            elif isinstance(element, GroupingSets):
                expanded = tuple(
                    tuple(grouping_name(e) for e in grouping_set)
                    for grouping_set in element.sets
                )
                element_sets.append(expanded)
            else:  # pragma: no cover - parser produces only the above
                raise BindError(f"unknown grouping element {element!r}")

        sets: tuple[tuple[str, ...], ...] = ((),)
        for element in element_sets:
            sets = cross_combine(sets, element)

        # ---- aggregate calls -> lower QCLs + GROUP-BY outputs ----
        aggregate_calls: list[tuple[AggCall, str | None]] = []
        for item in stmt.items:
            for node in item.expr.walk():
                if isinstance(node, AggCall):
                    alias = item.alias if item.expr == node else None
                    aggregate_calls.append((node, alias))
        if stmt.having is not None:
            for node in stmt.having.walk():
                if isinstance(node, AggCall):
                    aggregate_calls.append((node, None))

        groupby = GroupByBox(self._box_name("GB"), "g", lower)
        groupby.set_grouping(tuple(grouping_names), sets)
        for name in grouping_names:
            child_qcl = lower.output(name)
            groupby.add_grouping_output(name, name, child_qcl.nullable)

        agg_namer = _OutputNamer(prefix="agg")
        agg_output_by_key: dict[Expr, str] = {}
        for call, alias in aggregate_calls:
            resolved_arg = (
                self._resolve(call.arg, scope, lower_sink)
                if call.arg is not None
                else None
            )
            if resolved_arg is not None and resolved_arg.contains_aggregate():
                raise BindError("nested aggregate functions are not allowed")
            arg_ref = None
            if resolved_arg is not None:
                arg_name = lower_qcl_for(resolved_arg, None)
                arg_ref = groupby.child_quantifier.ref(arg_name)
            bound_call = AggCall(call.func, arg_ref, call.distinct)
            key = normalize(bound_call)
            if key in agg_output_by_key:
                continue
            name = agg_namer.name_for(bound_call, alias)
            while groupby.has_output(name):
                name = agg_namer.fresh()
            nullable = call.func != "count" and (
                arg_ref is None or lower.output(arg_ref.name).nullable
            )
            groupby.add_aggregate_output(name, bound_call, nullable)
            agg_output_by_key[key] = name

        # ---- upper SELECT: HAVING + final projections ----
        upper = SelectBox(self._box_name("Sel"))
        gq = upper.add_quantifier("g", groupby)
        upper_sink = _SubquerySink(self, upper)

        group_map = {
            key: gq.ref(name) for key, name in lower_qcl_by_norm.items()
            if name in grouping_names
        }

        def substitute(expr: Expr) -> Expr:
            def visit(node: Expr) -> Expr | None:
                if isinstance(node, AggCall):
                    resolved_arg = (
                        self._resolve(node.arg, scope, lower_sink)
                        if node.arg is not None
                        else None
                    )
                    arg_ref = None
                    if resolved_arg is not None:
                        arg_ref = groupby.child_quantifier.ref(
                            lower_qcl_for(resolved_arg, None)
                        )
                    key = normalize(AggCall(node.func, arg_ref, node.distinct))
                    return gq.ref(agg_output_by_key[key])
                if isinstance(node, SubqueryExpr):
                    return upper_sink.install(node)
                if isinstance(node, ColumnRef) or not node.children():
                    resolved = self._resolve(node, scope, _ReadOnlySink())
                    key = normalize(resolved)
                    if key in group_map:
                        return group_map[key]
                    return None
                # Try to match a whole sub-expression against a grouping
                # expression (e.g. SELECT year(date) with GROUP BY year(date)).
                try:
                    resolved = self._resolve(node, scope, _ReadOnlySink())
                except BindError:
                    return None
                key = normalize(resolved)
                if key in group_map:
                    return group_map[key]
                return None

            return expr.transform(visit)

        if stmt.having is not None:
            for predicate in split_conjuncts(stmt.having):
                bound = substitute(predicate)
                self._check_grouped(bound, upper, "HAVING")
                upper.add_predicate(bound)

        upper_namer = _OutputNamer()
        for item in stmt.items:
            bound = substitute(item.expr)
            self._check_grouped(bound, upper, "SELECT")
            nullable = expr_nullable(bound, _nullable_resolver(upper))
            upper.add_output(QCL(upper_namer.name_for(bound, item.alias), bound, nullable))
        upper.distinct = stmt.distinct
        self._order_binder = substitute
        return upper

    @staticmethod
    def _check_grouped(expr: Expr, upper: SelectBox, clause: str) -> None:
        names = {q.name for q in upper.quantifiers()}
        for ref in expr.column_refs():
            if ref.qualifier not in names:
                raise BindError(
                    f"{clause} expression references {ref!r}, which is neither "
                    "a grouping expression nor an aggregate"
                )
        if any(isinstance(node, SubqueryExpr) for node in expr.walk()):
            raise BindError(f"unresolved subquery in {clause}")

    def _bind_order_by(self, stmt: SelectStatement, root: QGMBox) -> list[tuple[str, bool]]:
        keys: list[tuple[str, bool]] = []
        for item in stmt.order_by:
            keys.append((self._order_key(item.expr, root), item.ascending))
        return keys

    def _order_key(self, expr: Expr, root: QGMBox) -> str:
        """An ORDER BY key: an output column name, or any expression
        that equals an output expression (e.g. ``ORDER BY count(*)``)."""
        if isinstance(expr, ColumnRef) and expr.qualifier is None:
            matched = _find_column(root, expr.name)
            if matched is not None:
                return matched
        if self._order_binder is not None:
            try:
                bound = self._order_binder(expr)
            except BindError:
                bound = None
            if bound is not None and not any(
                isinstance(node, SubqueryExpr) for node in bound.walk()
            ):
                key = normalize(bound)
                for qcl in root.outputs:
                    if qcl.expr is not None and normalize(qcl.expr) == key:
                        return qcl.name
        raise BindError(
            f"ORDER BY must reference an output column or a select-list "
            f"expression (got {expr!r})"
        )


def _distinct_as_group_by(stmt: SelectStatement) -> SelectStatement:
    """Rewrite SELECT DISTINCT e1, ..., en as GROUP BY e1, ..., en."""
    from repro.sql.ast import SimpleGrouping

    return SelectStatement(
        items=stmt.items,
        from_items=stmt.from_items,
        where=stmt.where,
        group_by=tuple(SimpleGrouping(item.expr) for item in stmt.items),
        having=None,
        distinct=False,
        order_by=stmt.order_by,
        select_star=False,
        limit=stmt.limit,
    )


class _SubquerySink:
    """Installs scalar subqueries as quantifiers of a target box."""

    def __init__(self, binder: _Binder, box: SelectBox):
        self._binder = binder
        self._box = box
        self._installed: dict[SubqueryExpr, ColumnRef] = {}
        self._counter = 0

    def install(self, node: SubqueryExpr) -> ColumnRef:
        if node in self._installed:
            return self._installed[node]
        subgraph = self._binder.build_block(node.query)
        self._require_single_row(subgraph)
        if len(subgraph.outputs) != 1:
            raise BindError("scalar subquery must return exactly one column")
        self._counter += 1
        name = f"sq{self._counter}"
        while any(q.name == name for q in self._box.quantifiers()):
            self._counter += 1
            name = f"sq{self._counter}"
        quantifier = self._box.add_quantifier(name, subgraph)
        ref = quantifier.ref(subgraph.outputs[0].name)
        self._installed[node] = ref
        return ref

    @staticmethod
    def _require_single_row(subgraph: QGMBox) -> None:
        """Only scalar-aggregate subqueries are guaranteed single-row;
        anything else would change cardinality under our join encoding."""
        box = subgraph
        while isinstance(box, SelectBox) and len(box.quantifiers()) == 1:
            child = box.quantifiers()[0].box
            if isinstance(child, GroupByBox) and child.grouping_sets == ((),):
                if not box.predicates:
                    return
            box = child
        raise UnsupportedSqlError(
            "scalar subqueries must be ungrouped aggregates "
            "(e.g. (SELECT COUNT(*) FROM t))"
        )


class _ReadOnlySink:
    """A sink that refuses subqueries — used when resolving expressions
    purely for comparison, where installing quantifiers would be a side
    effect."""

    def install(self, node: SubqueryExpr) -> ColumnRef:
        raise BindError("subquery not allowed in this clause")


class _OutputNamer:
    """Assigns unique output column names: alias > column name > generated."""

    def __init__(self, prefix: str = "c"):
        self._prefix = prefix
        self._used: set[str] = set()
        self._counter = 0

    def fresh(self) -> str:
        while True:
            self._counter += 1
            candidate = f"{self._prefix}{self._counter}"
            if candidate.lower() not in self._used:
                self._used.add(candidate.lower())
                return candidate

    def name_for(self, expr: Expr, alias: str | None) -> str:
        candidate = alias
        if candidate is None and isinstance(expr, ColumnRef):
            candidate = expr.name
        if candidate is None and isinstance(expr, AggCall) and isinstance(
            expr.arg, ColumnRef
        ):
            candidate = f"{expr.func}_{expr.arg.name}"
        if candidate is None or candidate.lower() in self._used:
            return self.fresh()
        self._used.add(candidate.lower())
        return candidate


def _nullable_resolver(box: QGMBox):
    """column_nullable callback for :func:`expr_nullable` over ``box``'s
    quantifiers."""
    quantifiers = {q.name: q for q in box.quantifiers()}

    def resolve(ref: ColumnRef) -> bool:
        quantifier = quantifiers.get(ref.qualifier)
        if quantifier is None:
            return True
        return quantifier.box.output(ref.name).nullable

    return resolve
