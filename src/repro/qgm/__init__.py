"""Query Graph Model: boxes, builder, unparser, display."""

from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QCL,
    QGMBox,
    Quantifier,
    QueryGraph,
    SelectBox,
    canonical_grouping_sets,
    expand_cube,
    expand_rollup,
)
from repro.qgm.build import build_graph

__all__ = [
    "BaseTableBox",
    "GroupByBox",
    "QCL",
    "QGMBox",
    "Quantifier",
    "QueryGraph",
    "SelectBox",
    "build_graph",
    "canonical_grouping_sets",
    "expand_cube",
    "expand_rollup",
]
