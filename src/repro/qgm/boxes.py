"""The Query Graph Model (Section 2 of the paper).

A query is a rooted DAG of *boxes*. Leaf boxes are base tables; internal
boxes are SELECT (select-project-join, WHERE/HAVING predicates, scalar
computation) or GROUP-BY (grouping + aggregation). Edges carry records
from a child (producer) to a parent (consumer) and are reified as
:class:`Quantifier` objects — the parent's *range variables* over its
children.

Terminology from the paper:

* **QNC** — an input column of a box: a :class:`~repro.expr.nodes.ColumnRef`
  whose ``qualifier`` names one of the box's quantifiers and whose ``name``
  is an output column of that quantifier's child box.
* **QCL** — an output column of a box, computed by an expression over the
  box's QNCs. For GROUP-BY boxes, QCLs are either grouping columns (simple
  QNCs) or aggregate functions over simple QNCs; complex expressions live
  in the SELECT box below, exactly as the paper prescribes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.catalog.schema import Catalog, TableSchema
from repro.errors import ReproError
from repro.expr.equivalence import EquivalenceClasses
from repro.expr.nodes import (
    AggCall,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    split_conjuncts,
)
from repro.expr.functions import lookup_function


@dataclass
class QCL:
    """An output column of a box.

    ``expr`` is over the owning box's QNCs; it is None for base-table
    boxes, whose outputs simply *are* the table's columns.
    """

    name: str
    expr: Expr | None
    nullable: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QCL({self.name} := {self.expr!r})"


class Quantifier:
    """A range variable of a box over one child box."""

    def __init__(self, name: str, box: "QGMBox"):
        self.name = name
        self.box = box

    def ref(self, column: str) -> ColumnRef:
        """A QNC over this quantifier."""
        return ColumnRef(self.name, column)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Quantifier({self.name} -> {self.box.name})"


class QGMBox:
    """Base class of all QGM boxes."""

    kind = "box"

    def __init__(self, name: str):
        self.name = name
        self.outputs: list[QCL] = []

    # -- outputs -------------------------------------------------------
    @property
    def output_names(self) -> list[str]:
        return [qcl.name for qcl in self.outputs]

    def has_output(self, name: str) -> bool:
        return any(qcl.name == name for qcl in self.outputs)

    def output(self, name: str) -> QCL:
        for qcl in self.outputs:
            if qcl.name == name:
                return qcl
        raise ReproError(f"box {self.name} has no output column {name!r}")

    def add_output(self, qcl: QCL) -> QCL:
        if self.has_output(qcl.name):
            raise ReproError(f"duplicate output {qcl.name!r} in box {self.name}")
        self.outputs.append(qcl)
        return qcl

    # -- children ------------------------------------------------------
    def quantifiers(self) -> list[Quantifier]:
        return []

    def quantifier(self, name: str) -> Quantifier:
        for quantifier in self.quantifiers():
            if quantifier.name == name:
                return quantifier
        raise ReproError(f"box {self.name} has no quantifier {name!r}")

    def children(self) -> list["QGMBox"]:
        return [quantifier.box for quantifier in self.quantifiers()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class BaseTableBox(QGMBox):
    """A leaf box: a scan of a stored table (base table or materialized
    summary table)."""

    kind = "base"

    def __init__(self, name: str, schema: TableSchema):
        super().__init__(name)
        self.schema = schema
        self.table_name = schema.name
        for column in schema.columns:
            self.outputs.append(QCL(column.name, None, nullable=column.nullable))


class SelectBox(QGMBox):
    """Select-project-join box.

    Holds any number of quantifiers (join operands — including scalar
    subqueries, which are simply quantifiers over single-row children),
    a conjunctive list of predicates, and arbitrarily complex
    aggregate-free output expressions.
    """

    kind = "select"

    def __init__(self, name: str):
        super().__init__(name)
        self._quantifiers: list[Quantifier] = []
        self.predicates: list[Expr] = []
        self.distinct = False

    def quantifiers(self) -> list[Quantifier]:
        return list(self._quantifiers)

    def add_quantifier(self, name: str, box: QGMBox) -> Quantifier:
        if any(q.name == name for q in self._quantifiers):
            raise ReproError(f"duplicate quantifier {name!r} in box {self.name}")
        quantifier = Quantifier(name, box)
        self._quantifiers.append(quantifier)
        return quantifier

    def add_predicate(self, predicate: Expr) -> None:
        self.predicates.extend(split_conjuncts(predicate))

    def equivalence_classes(self) -> EquivalenceClasses:
        """Column-equivalence classes induced by this box's equality join
        predicates (recomputed on demand; boxes are small)."""
        classes = EquivalenceClasses()
        for predicate in self.predicates:
            classes.add_predicate(predicate)
        return classes

    def join_pairs_between(
        self, left: Quantifier, right: Quantifier
    ) -> set[tuple[str, str]]:
        """Column-name pairs (left_col, right_col) equated between the two
        quantifiers, including equalities implied transitively."""
        classes = self.equivalence_classes()
        pairs: set[tuple[str, str]] = set()
        for ref in self._known_refs(classes):
            if ref.qualifier != left.name:
                continue
            for member in classes.members(ref):
                if member.qualifier == right.name:
                    pairs.add((ref.name, member.name))
        return pairs

    def _known_refs(self, classes: EquivalenceClasses) -> list[ColumnRef]:
        refs: set[ColumnRef] = set()
        for predicate in self.predicates:
            refs.update(predicate.column_refs())
        return sorted(refs, key=lambda r: (r.qualifier or "", r.name))


class UnionAllBox(QGMBox):
    """Bag union of uniform children (UNION ALL).

    Output columns take the first child's names; every child must have
    the same arity. Matching treats union boxes conservatively (no
    cross-union patterns), but subtrees below a branch still match and
    rewrite independently.
    """

    kind = "union"

    def __init__(self, name: str):
        super().__init__(name)
        self._quantifiers: list[Quantifier] = []

    def quantifiers(self) -> list[Quantifier]:
        return list(self._quantifiers)

    def add_branch(self, name: str, box: QGMBox) -> Quantifier:
        if self._quantifiers and len(box.outputs) != len(self.outputs):
            raise ReproError(
                f"UNION ALL branch {box.name} has {len(box.outputs)} columns, "
                f"expected {len(self.outputs)}"
            )
        quantifier = Quantifier(name, box)
        self._quantifiers.append(quantifier)
        if len(self._quantifiers) == 1:
            for qcl in box.outputs:
                nullable = qcl.nullable
                self.outputs.append(QCL(qcl.name, None, nullable))
        else:
            for mine, theirs in zip(self.outputs, box.outputs):
                mine.nullable = mine.nullable or theirs.nullable
        return quantifier


class GroupByBox(QGMBox):
    """Grouping + aggregation box.

    ``grouping_items`` are output/grouping column names (each backed by a
    pass-through QCL over a simple QNC of the single child);
    ``grouping_sets`` is the canonical GS list (Section 5): a simple
    GROUP BY has exactly one set containing all items. Aggregate outputs
    are :class:`~repro.expr.nodes.AggCall` over simple QNCs.
    """

    kind = "groupby"

    def __init__(self, name: str, quantifier_name: str, child: QGMBox):
        super().__init__(name)
        self._quantifier = Quantifier(quantifier_name, child)
        self.grouping_items: tuple[str, ...] = ()
        self.grouping_sets: tuple[tuple[str, ...], ...] = ((),)

    def quantifiers(self) -> list[Quantifier]:
        return [self._quantifier]

    @property
    def child_quantifier(self) -> Quantifier:
        return self._quantifier

    def set_grouping(
        self,
        items: tuple[str, ...],
        sets: tuple[tuple[str, ...], ...] | None = None,
    ) -> None:
        """Define grouping columns; ``sets`` defaults to the single full
        set (a simple GROUP BY)."""
        self.grouping_items = tuple(items)
        if sets is None:
            sets = (tuple(items),)
        self.grouping_sets = canonical_grouping_sets(items, sets)

    @property
    def is_multidimensional(self) -> bool:
        """True when this box unions more than one cuboid."""
        return len(self.grouping_sets) > 1

    def add_grouping_output(self, name: str, child_column: str, nullable: bool) -> QCL:
        """A pass-through QCL for grouping column ``child_column``."""
        grouped_out_somewhere = any(
            name not in grouping_set for grouping_set in self.grouping_sets
        )
        return self.add_output(
            QCL(
                name,
                self._quantifier.ref(child_column),
                nullable=nullable or grouped_out_somewhere,
            )
        )

    def add_aggregate_output(self, name: str, call: AggCall, nullable: bool) -> QCL:
        if call.arg is not None and not isinstance(call.arg, ColumnRef):
            raise ReproError(
                "GROUP-BY aggregates take simple input columns; "
                f"got {call.arg!r} (compute it in the child SELECT box)"
            )
        return self.add_output(QCL(name, call, nullable=nullable))

    def grouping_outputs(self) -> list[QCL]:
        return [qcl for qcl in self.outputs if not isinstance(qcl.expr, AggCall)]

    def aggregate_outputs(self) -> list[QCL]:
        return [qcl for qcl in self.outputs if isinstance(qcl.expr, AggCall)]


def canonical_grouping_sets(
    items: tuple[str, ...], sets: tuple[tuple[str, ...], ...]
) -> tuple[tuple[str, ...], ...]:
    """Canonicalize a grouping-set list: order each set by the grouping
    item order, drop duplicates, and order the sets (larger first, then
    lexicographic by item positions) for determinism."""
    position = {name: index for index, name in enumerate(items)}
    unique: dict[frozenset[str], tuple[str, ...]] = {}
    for grouping_set in sets:
        for name in grouping_set:
            if name not in position:
                raise ReproError(f"grouping set references unknown item {name!r}")
        key = frozenset(grouping_set)
        if key not in unique:
            ordered = tuple(sorted(set(grouping_set), key=position.__getitem__))
            unique[key] = ordered
    ordered_sets = sorted(
        unique.values(),
        key=lambda s: (-len(s), tuple(position[name] for name in s)),
    )
    return tuple(ordered_sets)


def expand_rollup(items: tuple[str, ...]) -> tuple[tuple[str, ...], ...]:
    """ROLLUP(a, b, c) -> (a,b,c), (a,b), (a,), ()."""
    return tuple(items[:end] for end in range(len(items), -1, -1))


def expand_cube(items: tuple[str, ...]) -> tuple[tuple[str, ...], ...]:
    """CUBE(a, b) -> every subset of (a, b)."""
    subsets: list[tuple[str, ...]] = []
    for size in range(len(items), -1, -1):
        subsets.extend(itertools.combinations(items, size))
    return tuple(subsets)


def cross_combine(
    left: tuple[tuple[str, ...], ...], right: tuple[tuple[str, ...], ...]
) -> tuple[tuple[str, ...], ...]:
    """Concatenate every pair of grouping sets (SQL's GROUP BY a, ROLLUP(b)
    semantics: the cross product of the element's set lists)."""
    combined = []
    for left_set in left:
        for right_set in right:
            merged = left_set + tuple(c for c in right_set if c not in left_set)
            combined.append(merged)
    return tuple(combined)


def box_heights(graph: "QueryGraph") -> dict[int, int]:
    """Height of every box in ``graph`` keyed by ``id(box)`` (leaves are 1).

    Shared by the navigator (to order root matches by how much query work
    they replace) and the rewriter (to pick the candidate replacing the
    highest box).
    """
    heights: dict[int, int] = {}
    for box in graph.boxes():  # children before parents
        child_heights = [heights[id(child)] for child in box.children()]
        heights[id(box)] = 1 + max(child_heights, default=0)
    return heights


def expr_nullable(expr: Expr, column_nullable) -> bool:
    """Conservative nullability of ``expr``; ``column_nullable`` maps a
    ColumnRef to the nullability of the referenced column."""
    if isinstance(expr, Literal):
        return expr.value is None
    if isinstance(expr, ColumnRef):
        return column_nullable(expr)
    if isinstance(expr, IsNull):
        return False
    if isinstance(expr, AggCall):
        if expr.func == "count":
            return False
        return expr_nullable(expr.arg, column_nullable) if expr.arg else False
    if isinstance(expr, FuncCall):
        function = lookup_function(expr.name)
        children = [expr_nullable(a, column_nullable) for a in expr.args]
        if function is not None and not function.null_propagating:
            return all(children) if children else False
        return any(children)
    if isinstance(expr, CaseWhen):
        values = [value for _, value in expr.pairs()] + [expr.default]
        return any(expr_nullable(value, column_nullable) for value in values)
    if isinstance(expr, InList):
        return any(expr_nullable(child, column_nullable) for child in expr.children())
    return any(expr_nullable(child, column_nullable) for child in expr.children())


class QueryGraph:
    """A rooted QGM graph plus the catalog it binds to.

    ``order_by`` (optional) is a presentation-level ordering applied by the
    executor to the root's rows; it plays no role in matching, mirroring
    how the paper treats QGM as semantics, not a plan.
    """

    def __init__(self, root: QGMBox, catalog: Catalog):
        self.root = root
        self.catalog = catalog
        self.order_by: list[tuple[str, bool]] = []  # (output name, ascending)
        self.limit: int | None = None  # presentation-level row cap

    def boxes(self) -> list[QGMBox]:
        """All boxes, children before parents (topological order)."""
        order: list[QGMBox] = []
        seen: set[int] = set()

        def visit(box: QGMBox) -> None:
            if id(box) in seen:
                return
            seen.add(id(box))
            for child in box.children():
                visit(child)
            order.append(box)

        visit(self.root)
        return order

    def base_tables(self) -> set[str]:
        """Names of all base tables referenced (lower-cased)."""
        return {
            box.table_name.lower()
            for box in self.boxes()
            if isinstance(box, BaseTableBox)
        }

    def parents_of(self, target: QGMBox) -> list[tuple[QGMBox, Quantifier]]:
        """(parent, quantifier) pairs whose quantifier ranges over ``target``."""
        found = []
        for box in self.boxes():
            for quantifier in box.quantifiers():
                if quantifier.box is target:
                    found.append((box, quantifier))
        return found

    def validate(self) -> None:
        """Check referential integrity of the graph (used in tests)."""
        for box in self.boxes():
            quantifier_names = {q.name: q for q in box.quantifiers()}
            exprs: list[Expr] = []
            exprs.extend(qcl.expr for qcl in box.outputs if qcl.expr is not None)
            if isinstance(box, SelectBox):
                exprs.extend(box.predicates)
            for expr in exprs:
                for ref in expr.column_refs():
                    quantifier = quantifier_names.get(ref.qualifier)
                    if quantifier is None:
                        raise ReproError(
                            f"box {box.name}: unknown quantifier in {ref!r}"
                        )
                    if not quantifier.box.has_output(ref.name):
                        raise ReproError(
                            f"box {box.name}: {ref!r} does not match an output "
                            f"of {quantifier.box.name}"
                        )
