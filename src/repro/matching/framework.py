"""Matching infrastructure (Section 3 of the paper).

A *match* between a subsumee box E (from the query graph) and a subsumer
box R (from the AST graph) proves that a compensation — a small QGM
fragment applied to R's output — reproduces E's output exactly.

Representation:

* :class:`SubsumerRef` is a placeholder leaf standing for "the output of
  the subsumer box"; at rewrite time it is spliced onto a scan of the
  materialized AST.
* A compensation is a bottom-up ``chain`` of ordinary SELECT / GROUP-BY
  boxes. Every chain box consumes the box below it (or the
  :class:`SubsumerRef` leaf) through a quantifier named :data:`MAIN`;
  rejoin children hang off chain SELECT boxes under their own names.
* An **exact** match has an empty chain plus a ``column_map`` from
  subsumee output names to the equivalent subsumer output names
  (footnote 5: the subsumer may produce extra columns).
* A non-exact match's chain top produces exactly the subsumee's output
  columns (same names), which is what lets parents translate through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Catalog
from repro.errors import ReproError
from repro.expr.nodes import ColumnRef, Expr
from repro.qgm.boxes import QCL, GroupByBox, QGMBox, SelectBox

#: quantifier name every compensation box uses for its "input from below"
MAIN = "_in"


class SubsumerRef(QGMBox):
    """Placeholder leaf whose outputs mirror the subsumer's outputs."""

    kind = "subsumer-ref"

    def __init__(self, subsumer: QGMBox):
        super().__init__(f"Use[{subsumer.name}]")
        self.subsumer = subsumer
        for qcl in subsumer.outputs:
            self.outputs.append(QCL(qcl.name, None, nullable=qcl.nullable))


@dataclass
class MatchResult:
    """Outcome of a successful match between ``subsumee`` and ``subsumer``."""

    subsumee: QGMBox
    subsumer: QGMBox
    chain: list[QGMBox] = field(default_factory=list)
    column_map: dict[str, str] = field(default_factory=dict)
    pattern: str = ""  # which paper pattern established the match

    @property
    def exact(self) -> bool:
        return not self.chain

    @property
    def top(self) -> QGMBox:
        """The box equivalent to the subsumee (chain top, or the
        placeholder's subsumer itself for exact matches)."""
        if self.chain:
            return self.chain[-1]
        return self.subsumer

    def mapped(self, subsumee_output: str) -> str:
        """The name of the column of :meth:`top` equivalent to the given
        subsumee output column."""
        if self.exact:
            return self.column_map[subsumee_output]
        return subsumee_output

    def describe(self) -> str:
        """One-line human-readable summary (used by explain output)."""
        if self.exact:
            return (
                f"{self.subsumee.name} == {self.subsumer.name} (exact, {self.pattern})"
            )
        boxes = " -> ".join(box.name for box in self.chain)
        return f"{self.subsumee.name} ~ {self.subsumer.name} via [{boxes}] ({self.pattern})"


#: default matcher options; override via ``MatchContext(options=...)``.
#: These exist for the ablation benchmarks — production use keeps the
#: defaults.
DEFAULT_OPTIONS = {
    # use join-predicate column equivalences during derivation (how aid
    # is derived from faid in Figure 5); disabling shows their value
    "column_equivalence": True,
    # choose the smallest matching cuboid (Section 5.1's rule); disabling
    # picks the largest to quantify the rule's benefit
    "prefer_small_cuboid": True,
}


class MatchContext:
    """Shared state for one navigator run over a (query, AST) pair."""

    def __init__(self, catalog: Catalog, options: dict | None = None):
        self.catalog = catalog
        self.results: dict[tuple[int, int], MatchResult] = {}
        self.options = dict(DEFAULT_OPTIONS)
        if options:
            self.options.update(options)
        self._name_counter = 0
        #: the active :class:`repro.governor.budget.QueryBudget`, set by
        #: the navigator so match functions can tick without a
        #: thread-local read per pairing; None when ungoverned
        self.governor = None

    def option(self, name: str):
        return self.options[name]

    def get(self, subsumee: QGMBox, subsumer: QGMBox) -> MatchResult | None:
        return self.results.get((id(subsumee), id(subsumer)))

    def record(self, result: MatchResult) -> MatchResult:
        self.results[(id(result.subsumee), id(result.subsumer))] = result
        return result

    def fresh_name(self, stem: str) -> str:
        self._name_counter += 1
        return f"{stem}-C{self._name_counter}"


# ----------------------------------------------------------------------
# Compensation-chain utilities
# ----------------------------------------------------------------------
def chain_leaf(chain: list[QGMBox]) -> SubsumerRef:
    """The SubsumerRef at the bottom of a non-empty chain."""
    box: QGMBox = chain[0]
    below = _main_child(box)
    if not isinstance(below, SubsumerRef):
        raise ReproError(f"chain bottom of {box.name} is not a SubsumerRef")
    return below


def _main_child(box: QGMBox) -> QGMBox:
    for quantifier in box.quantifiers():
        if quantifier.name == MAIN:
            return quantifier.box
    raise ReproError(f"box {box.name} has no {MAIN!r} quantifier")


def rebase_chain(
    chain: list[QGMBox], new_leaf: QGMBox, name_for: "callable"
) -> list[QGMBox]:
    """Deep-copy a compensation chain onto a new leaf box.

    Used when a child's compensation is carried verbatim into a parent
    compensation (pattern 4.2.2's "copied above") and by the final
    rewrite, which splices the chain onto the AST scan.
    """
    rebased: list[QGMBox] = []
    below = new_leaf
    for box in chain:
        clone = clone_chain_box(box, below, name_for(box))
        rebased.append(clone)
        below = clone
    return rebased


def clone_chain_box(box: QGMBox, new_main_child: QGMBox, name: str) -> QGMBox:
    """Copy one chain box, re-pointing its MAIN quantifier."""
    if isinstance(box, SelectBox):
        clone = SelectBox(name)
        for quantifier in box.quantifiers():
            if quantifier.name == MAIN:
                clone.add_quantifier(MAIN, new_main_child)
            else:
                clone.add_quantifier(quantifier.name, quantifier.box)
        clone.predicates = list(box.predicates)
        clone.distinct = box.distinct
        clone.outputs = [QCL(q.name, q.expr, q.nullable) for q in box.outputs]
        return clone
    if isinstance(box, GroupByBox):
        clone = GroupByBox(name, MAIN, new_main_child)
        clone.grouping_items = box.grouping_items
        clone.grouping_sets = box.grouping_sets
        clone.outputs = [QCL(q.name, q.expr, q.nullable) for q in box.outputs]
        return clone
    raise ReproError(f"cannot clone chain box {box!r}")


def inline_through_chain(
    expr: Expr, chain: list[QGMBox], top_index: int, subsumer_qualifier: str
) -> Expr:
    """Rewrite ``expr`` (over chain[top_index]'s QNCs) down to the chain's
    leaf: every MAIN reference is replaced by the defining QCL expression
    of the box below, recursively; references that bottom out at the
    SubsumerRef become ``subsumer_qualifier``-qualified columns. Rejoin
    references are kept as-is.

    The result may contain :class:`~repro.expr.nodes.AggCall` nodes when a
    GROUP-BY box is inlined — that is exactly the Section 6 translation of
    Figure 15 (``cnt`` becomes ``sum(cnt)``), and it is what makes the
    Table 1 inequivalence detectable.
    """

    def expand(node: Expr, level: int) -> Expr:
        below = chain[level - 1] if level > 0 else None

        def visit(ref: Expr) -> Expr | None:
            if not isinstance(ref, ColumnRef):
                return None
            if ref.qualifier != MAIN:
                return ref  # rejoin reference: stop here, keep verbatim
            if below is None:
                return ColumnRef(subsumer_qualifier, ref.name)
            defining = below.output(ref.name).expr
            if defining is None:  # below is a leaf-like box
                return ColumnRef(subsumer_qualifier, ref.name)
            return expand(defining, level - 1)

        return node.transform(visit)

    return expand(expr, top_index)


def chain_output_in_subsumer_context(
    match: MatchResult, column: str, subsumer_qualifier: str
) -> Expr:
    """The expression computing compensation output ``column``, expressed
    over the subsumer's output columns (plus rejoin references)."""
    if match.exact:
        return ColumnRef(subsumer_qualifier, match.column_map[column])
    top_index = len(match.chain) - 1
    top = match.chain[top_index]
    return inline_through_chain(
        top.output(column).expr, match.chain, top_index, subsumer_qualifier
    )


def chain_rejoin_quantifiers(chain: list[QGMBox]):
    """All non-MAIN quantifiers found on chain boxes (the rejoins)."""
    rejoins = []
    for box in chain:
        for quantifier in box.quantifiers():
            if quantifier.name != MAIN:
                rejoins.append(quantifier)
    return rejoins


def chain_predicates(chain: list[QGMBox]) -> list[tuple[int, Expr]]:
    """(chain index, predicate) for every predicate on a chain SELECT box."""
    found = []
    for index, box in enumerate(chain):
        if isinstance(box, SelectBox):
            for predicate in box.predicates:
                found.append((index, predicate))
    return found


def chain_has_grouping(chain: list[QGMBox]) -> bool:
    return any(isinstance(box, GroupByBox) for box in chain)
