"""The navigator (Section 3).

Scans the query and AST graphs bottom-up, invoking the match function on
candidate (subsumee, subsumer) pairs. Both graphs are small (a handful of
boxes), so rather than maintaining the paper's explicit worklist of
candidate pairs we simply enumerate all pairs in topological
(children-first) order, which gives the same guarantee the paper needs:
when a pair is attempted, every pair of their children has already been
attempted and recorded in the context.
"""

from __future__ import annotations

from repro.matching.framework import MatchContext, MatchResult
from repro.governor import scope as governor_scope
from repro.matching.matchfn import match_boxes
from repro.obs import trace as _trace
from repro.qgm.boxes import QueryGraph, box_heights


def match_graphs(
    query: QueryGraph, ast: QueryGraph, options: dict | None = None
) -> MatchContext:
    """Run the matching algorithm; the returned context holds every match
    found between query boxes (subsumees) and AST boxes (subsumers)."""
    ctx = MatchContext(query.catalog, options=options)
    # Governor scope, read once per navigation: match_boxes ticks the
    # budget per box-pairing through ctx.governor (every pairing is a
    # checkpoint — a single pairing can recurse arbitrarily deep, so
    # this is the cancellation granularity the ISSUE's "never hangs"
    # contract rests on).
    ctx.governor = governor_scope.current()
    ast_boxes = ast.boxes()  # children before parents
    tracer = _trace.ACTIVE
    if tracer is not None:
        for subsumee in query.boxes():
            for subsumer in ast_boxes:
                result = match_boxes(subsumee, subsumer, ctx)
                tracer.pair(subsumee, subsumer, result)
                if result is not None:
                    ctx.record(result)
        return ctx
    for subsumee in query.boxes():
        for subsumer in ast_boxes:
            result = match_boxes(subsumee, subsumer, ctx)
            if result is not None:
                ctx.record(result)
    return ctx


def root_matches(
    query: QueryGraph, ast: QueryGraph, ctx: MatchContext
) -> list[MatchResult]:
    """Matches whose subsumer is the AST's root box — the ones a rewrite
    can use — ordered so the most profitable (highest query box, i.e. the
    one replacing the most work) comes first."""
    heights = box_heights(query)
    found = [
        result
        for (subsumee_id, subsumer_id), result in ctx.results.items()
        if subsumer_id == id(ast.root)
    ]
    found.sort(key=lambda r: heights.get(id(r.subsumee), 0), reverse=True)
    return found
