"""Expression translation into the subsumer's context (Section 6).

Before a subsumee expression can be compared with subsumer expressions it
must be rewritten to use subsumer QNCs: what looks like a simple column in
the query may really be a complex expression computed by a nested block.
Translation walks each column reference through the child-match
compensations (Figure 15): replace the QNC with the defining QCL
expression at the top of the child compensation, keep expanding through
the chain, and finally land on the subsumer child's columns.

If a GROUP-BY compensation is crossed, aggregate functions appear in the
translated expression (``cnt`` becomes ``sum(cnt)``), which is precisely
how the Table 1 semantic inequivalence is detected — an aggregating
translation can never *match* a plain subsumer predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.expr.nodes import AggCall, ColumnRef, Expr
from repro.matching.framework import (
    MatchResult,
    chain_output_in_subsumer_context,
)
from repro.qgm.boxes import Quantifier


@dataclass
class MatchedChildPair:
    """A subsumee child matched with a subsumer child."""

    subsumee_q: Quantifier
    subsumer_q: Quantifier
    match: MatchResult


class ChildTranslator:
    """Rewrites subsumee-box expressions into the subsumer box's context.

    After translation, every column reference is either
    ``(subsumer quantifier, column)`` or a reference to a rejoin child
    (an unmatched subsumee child, kept under its original quantifier
    name). ``AggCall`` nodes may appear when translation crossed a
    grouping compensation; callers that require aggregate-free results
    must check :func:`is_aggregating`.
    """

    def __init__(self, pairs: list[MatchedChildPair], rejoin_names: set[str]):
        self._by_subsumee = {pair.subsumee_q.name: pair for pair in pairs}
        self._rejoin_names = set(rejoin_names)
        self._cache: dict[tuple[str, str], Expr] = {}

    def translate(self, expr: Expr) -> Expr:
        """Translate ``expr`` (over the subsumee box's QNCs)."""

        def visit(node: Expr) -> Expr | None:
            if not isinstance(node, ColumnRef):
                return None
            return self.translate_ref(node)

        return expr.transform(visit)

    def translate_ref(self, ref: ColumnRef) -> Expr:
        if ref.qualifier in self._rejoin_names:
            return ref
        pair = self._by_subsumee.get(ref.qualifier)
        if pair is None:
            raise ReproError(f"no child match covers quantifier {ref.qualifier!r}")
        key = (ref.qualifier, ref.name)
        cached = self._cache.get(key)
        if cached is None:
            cached = chain_output_in_subsumer_context(
                pair.match, ref.name, pair.subsumer_q.name
            )
            self._cache[key] = cached
        return cached


def is_aggregating(expr: Expr) -> bool:
    """True when translation introduced aggregate functions."""
    return expr.contains_aggregate()


def references_rejoin(expr: Expr, rejoin_names: set[str]) -> bool:
    return any(ref.qualifier in rejoin_names for ref in expr.column_refs())


# ----------------------------------------------------------------------
# Step-by-step tracing (Figure 15)
# ----------------------------------------------------------------------
@dataclass
class TranslationStep:
    """One step of a traced translation, for explain output."""

    description: str
    expr: Expr

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.description}: {self.expr!r}"


def trace_translation(
    expr: Expr, pairs: list[MatchedChildPair], rejoin_names: set[str]
) -> list[TranslationStep]:
    """Reproduce Figure 15: translate ``expr`` one QNC at a time,
    recording each intermediate expression.

    Unlike :class:`ChildTranslator` (which expands each reference fully in
    one shot), this expands one level per step so the intermediate forms
    match the paper's presentation.
    """
    steps = [TranslationStep("original subsumee expression", expr)]
    steps.append(TranslationStep("step 1: copy the expression", expr))
    by_name = {pair.subsumee_q.name: pair for pair in pairs}

    # Collect the original expression's translatable references, then
    # reveal their (full) translations one at a time. Each step re-walks
    # the *original* tree, so colliding quantifier names between the
    # subsumee and subsumer contexts cannot cause re-expansion.
    targets: list[ColumnRef] = []
    for ref in expr.column_refs():
        if ref.qualifier in rejoin_names or ref.qualifier not in by_name:
            continue
        if ref not in targets:
            targets.append(ref)

    for step_number, upto in enumerate(range(1, len(targets) + 1), start=2):
        revealed = set(targets[:upto])

        def visit(node: Expr) -> Expr | None:
            if isinstance(node, ColumnRef) and node in revealed:
                return _expand_one_level(node, by_name[node.qualifier])
            return None

        current = expr.transform(visit)
        steps.append(
            TranslationStep(
                f"step {step_number}: expand {targets[upto - 1]!r}", current
            )
        )
    return steps


def _expand_one_level(ref: ColumnRef, pair: MatchedChildPair) -> Expr:
    """Expand a single reference one compensation level (or to its final
    subsumer column for exact matches)."""
    match = pair.match
    if match.exact:
        return ColumnRef(pair.subsumer_q.name, match.column_map[ref.name])
    # Walk down from the chain top: a reference tagged with a chain box's
    # name means "output of that box"; expand exactly one definition.
    full = chain_output_in_subsumer_context(match, ref.name, pair.subsumer_q.name)
    return full


def describe_aggregating_conflict(expr: Expr) -> str:
    """Human-readable reason used when an aggregating translation fails to
    match a subsumer predicate (the Table 1 situation)."""
    aggs = [node for node in expr.walk() if isinstance(node, AggCall)]
    rendered = ", ".join(repr(a) for a in aggs)
    return (
        "translated predicate requires re-aggregation "
        f"({rendered}); it cannot match a plain subsumer predicate"
    )
