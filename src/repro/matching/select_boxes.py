"""SELECT/SELECT matching — patterns 4.1.1, 4.2.3 and 4.2.4.

One unified routine handles exact and SELECT-only child compensations
(4.1.1 / 4.2.3): subsumee predicates and output expressions are translated
into the subsumer's QNC context (inlining through child compensations) and
then derived from the subsumer's output columns; unmatched subsumee
children become rejoins and unmatched subsumer children must be provably
lossless via catalog RI constraints.

Pattern 4.2.4 (a child compensation that *contains grouping*) is handled
by pulling the grouping chain up — re-deriving its bottom box against the
subsumer's outputs, threading any columns the other (single-row) children
contribute through the chain as extra grouping columns (this is why the
paper's NewQ10 groups by ``totcnt``), and stacking a final SELECT that
applies the subsumee's own predicates against the chain top.
"""

from __future__ import annotations

from repro.expr.equivalence import EquivalenceClasses, canonical, equivalent
from repro.expr.nodes import (
    TRUE,
    BinaryOp,
    ColumnRef,
    Expr,
)
from repro.expr.normalize import normalize
from repro.expr.subsume import subsumes
from repro.matching.derivation import DerivationScope, derive_scalar
from repro.matching.framework import (
    MAIN,
    MatchContext,
    MatchResult,
    SubsumerRef,
    chain_has_grouping,
    chain_predicates,
    chain_rejoin_quantifiers,
    clone_chain_box,
    inline_through_chain,
)
from repro.matching.translation import ChildTranslator, MatchedChildPair
from repro.obs import trace as _trace
from repro.qgm.unparse import render_expr
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QCL,
    Quantifier,
    SelectBox,
    expr_nullable,
)


#: backstop for the pairing backtracking under heavy self-joins
_MAX_PAIRINGS = 16


def match_select_boxes(
    subsumee: SelectBox, subsumer: SelectBox, ctx: MatchContext
) -> MatchResult | None:
    if subsumer.distinct and not subsumee.distinct:
        # the AST dropped duplicates the query needs
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "regroupability", "4.1.1",
                "subsumer is DISTINCT but the query keeps duplicates",
            )
        return None
    # Self-joins make the child assignment ambiguous (footnote 3); try
    # alternative injective pairings, greedy-preferred first.
    for pairs, rejoins, extras in _enumerate_pairings(subsumee, subsumer, ctx):
        result = _match_with_pairing(
            subsumee, subsumer, ctx, pairs, rejoins, extras
        )
        if result is not None:
            return result
    return None


def _match_with_pairing(
    subsumee: SelectBox,
    subsumer: SelectBox,
    ctx: MatchContext,
    pairs: list[MatchedChildPair],
    rejoins: list[Quantifier],
    extras: list[Quantifier],
) -> MatchResult | None:
    grouping_pairs = [p for p in pairs if chain_has_grouping(p.match.chain)]
    if len(grouping_pairs) > 1:
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "regroupability", "4.2.4",
                f"{len(grouping_pairs)} children need grouping "
                "compensations; only one can be pulled up",
            )
        return None
    extra_join_preds = _lossless_extras(subsumee, subsumer, pairs, extras, ctx)
    if extra_join_preds is None:
        # condition 1 of 4.1.1 violated
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "lossless-extras", "4.2.3",
                "extra subsumer child(ren) "
                + ", ".join(q.name for q in extras)
                + " not provably lossless via RI joins",
            )
        return None

    if grouping_pairs:
        return _match_with_grouping_child(
            subsumee, subsumer, ctx, pairs, rejoins, extra_join_preds,
            grouping_pairs[0],
        )
    return _match_select_only(
        subsumee, subsumer, ctx, pairs, rejoins, extra_join_preds
    )


def _enumerate_pairings(
    subsumee: SelectBox, subsumer: SelectBox, ctx: MatchContext
):
    """Yield up to :data:`_MAX_PAIRINGS` injective child assignments.

    Children with no matching counterpart are rejoins; children with
    candidates must be paired. The first assignment yielded is the greedy
    exact-first one, so non-self-join queries behave exactly as before.
    """
    subsumer_qs = subsumer.quantifiers()
    entries: list[tuple[Quantifier, list[tuple[Quantifier, MatchResult]]]] = []
    rejoins: list[Quantifier] = []
    for eq in subsumee.quantifiers():
        candidates = []
        for rq in subsumer_qs:
            match = ctx.get(eq.box, rq.box)
            if match is not None:
                candidates.append((rq, match))
        if not candidates:
            rejoins.append(eq)
            continue
        candidates.sort(key=lambda item: (not item[1].exact, len(item[1].chain)))
        entries.append((eq, candidates))
    if not entries:
        # common condition 1: some child must match
        t = _trace.ACTIVE
        if t is not None:
            t.reject("child-match", detail="no subsumee child matched any subsumer child")
        return

    yielded = 0

    def assign(index: int, taken: set[str], acc: list[MatchedChildPair]):
        nonlocal yielded
        if yielded >= _MAX_PAIRINGS:
            return
        if index == len(entries):
            pairs = list(acc)
            used = {pair.subsumer_q.name for pair in pairs}
            extras = [rq for rq in subsumer_qs if rq.name not in used]
            yielded += 1
            yield pairs, list(rejoins), extras
            return
        eq, candidates = entries[index]
        for rq, match in candidates:
            if rq.name in taken:
                continue
            acc.append(MatchedChildPair(eq, rq, match))
            taken.add(rq.name)
            yield from assign(index + 1, taken, acc)
            taken.discard(rq.name)
            acc.pop()

    yield from assign(0, set(), [])


# ----------------------------------------------------------------------
# Extra children (condition 1 of 4.1.1)
# ----------------------------------------------------------------------
def _lossless_extras(
    subsumee: SelectBox,
    subsumer: SelectBox,
    pairs: list[MatchedChildPair],
    extras: list[Quantifier],
    ctx: MatchContext,
) -> list[Expr] | None:
    """Prove every extra subsumer child joins losslessly; returns the set
    of extra-join predicates (to exempt from condition 2), or None."""
    if not extras:
        return []
    extra_join_preds: list[Expr] = []
    kept: dict[str, Quantifier] = {p.subsumer_q.name: p.subsumer_q for p in pairs}
    pending = list(extras)
    # Peel extra children one at a time; each must hang off the kept set
    # by an RI-backed join (handles snowflake chains like Acct -> Cust).
    while pending:
        progressed = False
        for extra in list(pending):
            pending_names = {q.name for q in pending if q is not extra}
            result = _check_one_extra(subsumer, extra, kept, pending_names, ctx)
            if result is None:
                continue
            extra_join_preds.extend(result)
            kept[extra.name] = extra
            pending.remove(extra)
            progressed = True
        if not progressed:
            return None
    return extra_join_preds


def _check_one_extra(
    subsumer: SelectBox,
    extra: Quantifier,
    kept: dict[str, Quantifier],
    pending_names: set[str],
    ctx: MatchContext,
) -> list[Expr] | None:
    if not isinstance(extra.box, BaseTableBox):
        return None
    catalog = ctx.catalog
    # Collect this child's predicates: equality joins to a single kept
    # child are candidates for the RI proof; anything else is lossy.
    join_pairs: dict[str, set[tuple[str, str]]] = {}
    join_preds: list[Expr] = []
    for predicate in subsumer.predicates:
        qualifiers = {ref.qualifier for ref in predicate.column_refs()}
        if extra.name not in qualifiers:
            continue
        others = qualifiers - {extra.name}
        if others and others <= pending_names:
            continue  # validated when the other pending extra is peeled
        if not others:
            return None  # a local filter on the extra child is lossy
        if len(others) != 1 or not (
            isinstance(predicate, BinaryOp)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
        ):
            return None
        other = next(iter(others))
        if other not in kept:
            return None
        left, right = predicate.left, predicate.right
        if left.qualifier == extra.name:
            extra_ref, kept_ref = left, right
        else:
            extra_ref, kept_ref = right, left
        if not isinstance(kept[other].box, BaseTableBox):
            return None
        join_pairs.setdefault(other, set()).add((kept_ref.name, extra_ref.name))
        join_preds.append(predicate)
    for other, pairs_set in join_pairs.items():
        child_table = kept[other].box.table_name
        parent_table = extra.box.table_name
        if catalog.ri_join_is_lossless(
            child_table,
            {pair[0] for pair in pairs_set},
            parent_table,
            {pair[1] for pair in pairs_set},
            pairs_set,
        ):
            return join_preds
    return None


# ----------------------------------------------------------------------
# Unified 4.1.1 / 4.2.3
# ----------------------------------------------------------------------
def _match_select_only(
    subsumee: SelectBox,
    subsumer: SelectBox,
    ctx: MatchContext,
    pairs: list[MatchedChildPair],
    rejoins: list[Quantifier],
    extra_join_preds: list[Expr],
) -> MatchResult | None:
    rejoin_names = {q.name for q in rejoins}
    chain_rejoins: list[Quantifier] = []
    for pair in pairs:
        for quantifier in chain_rejoin_quantifiers(pair.match.chain):
            if quantifier.name in rejoin_names or any(
                q.name == quantifier.name for q in chain_rejoins
            ):
                # name collision across levels; bail out
                t = _trace.ACTIVE
                if t is not None:
                    t.reject(
                        "regroupability", "4.2.3",
                        f"rejoin quantifier name {quantifier.name!r} "
                        "collides across chain levels",
                    )
                return None
            chain_rejoins.append(quantifier)
    all_rejoin_names = rejoin_names | {q.name for q in chain_rejoins}

    translator = ChildTranslator(pairs, all_rejoin_names)
    pool: list[Expr] = []
    for predicate in subsumee.predicates:
        pool.append(translator.translate(predicate))
    for pair in pairs:
        for index, predicate in chain_predicates(pair.match.chain):
            pool.append(
                inline_through_chain(
                    predicate, pair.match.chain, index, pair.subsumer_q.name
                )
            )
    if any(p.contains_aggregate() for p in pool):
        # would need a grouping pattern
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "regroupability", "4.2.4",
                "translated predicate contains an aggregate; a SELECT-only "
                "compensation cannot re-apply it",
            )
        return None

    if not _subsumer_predicates_covered(subsumer, pool, extra_join_preds):
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "predicate-subsumption", "4.1.1 cond 2",
                _uncovered_predicate(subsumer, pool, extra_join_preds),
            )
        return None

    classes_r = _subsumer_classes(subsumer, ctx)
    scope = DerivationScope(
        {qcl.name: qcl.expr for qcl in subsumer.outputs},
        classes=classes_r,
        rejoin_names=all_rejoin_names,
    )
    compensation_preds = []
    for predicate in pool:
        if _matched_by_subsumer(predicate, subsumer, classes_r):
            continue
        derived = derive_scalar(predicate, scope)
        if derived is None:
            # condition 3 fails
            t = _trace.ACTIVE
            if t is not None:
                t.reject(
                    "predicate-subsumption", "4.1.1 cond 3",
                    "compensation predicate not derivable: "
                    + render_expr(predicate),
                )
            return None
        compensation_preds.append(derived)

    derived_outputs: list[tuple[str, Expr]] = []
    for qcl in subsumee.outputs:
        derived = derive_scalar(translator.translate(qcl.expr), scope)
        if derived is None:
            # condition 4 fails
            t = _trace.ACTIVE
            if t is not None:
                t.reject(
                    "qcl-derivation", "4.1.1 cond 4",
                    f"output {qcl.name!r} not derivable: "
                    + render_expr(qcl.expr),
                )
            return None
        derived_outputs.append((qcl.name, derived))

    all_rejoins = rejoins + chain_rejoins
    pattern = "4.2.3" if any(pair.match.chain for pair in pairs) else "4.1.1"
    exact = (
        not compensation_preds
        and not all_rejoins
        and subsumee.distinct == subsumer.distinct
        and all(
            isinstance(expr, ColumnRef) and expr.qualifier == MAIN
            for _, expr in derived_outputs
        )
        and len({expr.name for _, expr in derived_outputs}) == len(derived_outputs)
    )
    if exact:
        column_map = {name: expr.name for name, expr in derived_outputs}
        return MatchResult(subsumee, subsumer, [], column_map, pattern=pattern)

    comp = SelectBox(ctx.fresh_name("Sel"))
    comp.add_quantifier(MAIN, SubsumerRef(subsumer))
    for quantifier in all_rejoins:
        comp.add_quantifier(quantifier.name, quantifier.box)
    comp.predicates = compensation_preds
    comp.distinct = subsumee.distinct
    for name, expr in derived_outputs:
        comp.add_output(QCL(name, expr, expr_nullable(expr, _nullable_in(comp))))
    return MatchResult(subsumee, subsumer, [comp], pattern=pattern)


def _subsumer_classes(subsumer: SelectBox, ctx: MatchContext) -> EquivalenceClasses:
    """The subsumer's column equivalences, unless the ablation knob turns
    them off (quantifying Figure 5's aid-from-faid derivation)."""
    if ctx.option("column_equivalence"):
        return subsumer.equivalence_classes()
    return EquivalenceClasses()


def _subsumer_predicates_covered(
    subsumer: SelectBox, pool: list[Expr], extra_join_preds: list[Expr]
) -> bool:
    """Condition 2: every subsumer predicate (except extra joins) matches
    or subsumes a predicate the subsumee applies."""
    classes_e = EquivalenceClasses()
    for predicate in pool:
        classes_e.add_predicate(normalize(predicate))
    exempt = {normalize(p) for p in extra_join_preds}
    for r_pred in subsumer.predicates:
        if normalize(r_pred) in exempt:
            continue
        if canonical(r_pred, classes_e) == TRUE:
            continue  # implied by the subsumee's equality predicates
        if any(
            equivalent(p, r_pred, classes_e) or subsumes(r_pred, p, classes_e)
            for p in pool
        ):
            continue
        return False
    return True


def _uncovered_predicate(
    subsumer: SelectBox, pool: list[Expr], extra_join_preds: list[Expr]
) -> str:
    """Name the first subsumer predicate that condition 2 could not cover
    (trace detail only — mirrors :func:`_subsumer_predicates_covered`)."""
    classes_e = EquivalenceClasses()
    for predicate in pool:
        classes_e.add_predicate(normalize(predicate))
    exempt = {normalize(p) for p in extra_join_preds}
    for r_pred in subsumer.predicates:
        if normalize(r_pred) in exempt:
            continue
        if canonical(r_pred, classes_e) == TRUE:
            continue
        if any(
            equivalent(p, r_pred, classes_e) or subsumes(r_pred, p, classes_e)
            for p in pool
        ):
            continue
        return "subsumer predicate not implied by query: " + render_expr(r_pred)
    return "subsumer predicates not covered"


def _matched_by_subsumer(
    predicate: Expr, subsumer: SelectBox, classes_r: EquivalenceClasses
) -> bool:
    """A subsumee predicate already enforced by the subsumer needs no
    compensation (condition 3's 'matches' arm)."""
    if canonical(predicate, classes_r) == TRUE:
        return True  # e.g. the subsumee's join predicate is a subsumer join
    return any(equivalent(predicate, r_pred, classes_r) for r_pred in subsumer.predicates)


def _nullable_in(box: SelectBox):
    quantifiers = {q.name: q for q in box.quantifiers()}

    def resolve(ref: ColumnRef) -> bool:
        quantifier = quantifiers.get(ref.qualifier)
        if quantifier is None:
            return True
        return quantifier.box.output(ref.name).nullable

    return resolve


# ----------------------------------------------------------------------
# 4.2.4: a grouping child compensation under SELECT boxes
# ----------------------------------------------------------------------
def _match_with_grouping_child(
    subsumee: SelectBox,
    subsumer: SelectBox,
    ctx: MatchContext,
    pairs: list[MatchedChildPair],
    rejoins: list[Quantifier],
    extra_join_preds: list[Expr],
    grouping_pair: MatchedChildPair,
) -> MatchResult | None:
    other_pairs = [p for p in pairs if p is not grouping_pair]
    # The paper's pattern requires no joins between the matched children;
    # the non-grouping children must be single-row (scalar subqueries), so
    # threading their columns through the regrouping is sound.
    t = _trace.ACTIVE
    if any(not p.match.exact for p in other_pairs):
        if t is not None:
            t.reject(
                "regroupability", "4.2.4",
                "a sibling of the grouping child needs its own compensation",
            )
        return None
    if any(not _single_row_box(p.subsumee_q.box) for p in other_pairs):
        if t is not None:
            t.reject(
                "regroupability", "4.2.4",
                "a sibling of the grouping child is not provably single-row",
            )
        return None
    if _has_cross_child_predicates(subsumee, pairs) or _has_cross_child_predicates(
        subsumer, pairs
    ):
        if t is not None:
            t.reject(
                "regroupability", "4.2.4",
                "matched children are joined to each other",
            )
        return None
    if subsumee.distinct or subsumer.distinct:
        if t is not None:
            t.reject(
                "regroupability", "4.2.4",
                "DISTINCT cannot cross a pulled-up grouping compensation",
            )
        return None

    rejoin_names = {q.name for q in rejoins}
    all_rejoin_names = rejoin_names | {
        q.name for q in chain_rejoin_quantifiers(grouping_pair.match.chain)
    }
    translator = ChildTranslator(pairs, all_rejoin_names)

    # Condition 2 (the Table 1 check): the subsumer's own predicates must
    # be implied by the subsumee's — verified in the fully-inlined context,
    # where crossing the grouping compensation introduces aggregates that
    # can never match a plain predicate.
    pool = [translator.translate(p) for p in subsumee.predicates]
    if not _subsumer_predicates_covered(subsumer, pool, extra_join_preds):
        if t is not None:
            t.reject(
                "predicate-subsumption", "4.2.4",
                _uncovered_predicate(subsumer, pool, extra_join_preds),
            )
        return None

    classes_r = _subsumer_classes(subsumer, ctx)
    scope = DerivationScope(
        {qcl.name: qcl.expr for qcl in subsumer.outputs},
        classes=classes_r,
        rejoin_names=all_rejoin_names,
    )

    # ---- pull the grouping chain up: re-derive its bottom box ----
    rebuilt = _rebase_grouping_chain(
        grouping_pair, scope, ctx, subsumer
    )
    if rebuilt is None:
        if t is not None:
            t.reject(
                "qcl-derivation", "4.2.4",
                "grouping chain bottom box not re-derivable from the "
                "subsumer's outputs (pull-up failed)",
            )
        return None
    chain, thread = rebuilt

    # ---- columns of the other (single-row) children, threaded through ----
    for pair in other_pairs:
        for column in _columns_used_from(subsumee, pair.subsumee_q.name):
            r_ref = ColumnRef(pair.subsumer_q.name, pair.match.column_map[column])
            derived = derive_scalar(r_ref, scope)
            if derived is None:
                if t is not None:
                    t.reject(
                        "qcl-derivation", "4.2.4",
                        f"threaded column {column!r} not derivable",
                    )
                return None
            thread.carry(pair.subsumee_q.name, column, derived, chain)

    # ---- top SELECT: the subsumee's own predicates and outputs ----
    top = SelectBox(ctx.fresh_name("Sel"))
    top.add_quantifier(MAIN, chain[-1])
    for quantifier in rejoins:
        top.add_quantifier(quantifier.name, quantifier.box)

    def to_top(expr: Expr) -> Expr | None:
        def visit(node: Expr) -> Expr | None:
            if not isinstance(node, ColumnRef):
                return None
            if node.qualifier in rejoin_names:
                return node
            if node.qualifier == grouping_pair.subsumee_q.name:
                return ColumnRef(MAIN, node.name)
            threaded = thread.lookup(node.qualifier, node.name)
            if threaded is not None:
                return ColumnRef(MAIN, threaded)
            return node  # unreachable if threading covered everything

        return expr.transform(visit)

    for predicate in subsumee.predicates:
        mapped = to_top(predicate)
        if mapped is None:
            return None
        top.add_predicate(mapped)
    for qcl in subsumee.outputs:
        mapped = to_top(qcl.expr)
        if mapped is None:
            return None
        top.add_output(QCL(qcl.name, mapped, qcl.nullable))
    chain.append(top)
    return MatchResult(subsumee, subsumer, chain, pattern="4.2.4")


class _ThreadedColumns:
    """Tracks extra columns threaded through a pulled-up grouping chain."""

    def __init__(self, ctx: MatchContext):
        self._ctx = ctx
        self._by_source: dict[tuple[str, str], str] = {}
        self._counter = 0

    def carry(
        self,
        qualifier: str,
        column: str,
        bottom_expr: Expr,
        chain: list,
    ) -> str:
        key = (qualifier, column)
        if key in self._by_source:
            return self._by_source[key]
        self._counter += 1
        name = column
        while any(box.has_output(name) for box in chain):
            name = f"{column}_{self._counter}"
            self._counter += 1
        bottom = chain[0]
        bottom.add_output(QCL(name, bottom_expr, nullable=True))
        for box in chain[1:]:
            if isinstance(box, GroupByBox):
                box.grouping_items = box.grouping_items + (name,)
                box.grouping_sets = tuple(
                    grouping_set + (name,) for grouping_set in box.grouping_sets
                )
                box.add_output(QCL(name, ColumnRef(MAIN, name), nullable=True))
            else:
                box.add_output(QCL(name, ColumnRef(MAIN, name), nullable=True))
        self._by_source[key] = name
        return name

    def lookup(self, qualifier: str, column: str) -> str | None:
        return self._by_source.get((qualifier, column))


def _rebase_grouping_chain(
    pair: MatchedChildPair,
    scope: DerivationScope,
    ctx: MatchContext,
    subsumer: SelectBox,
):
    """Copy the grouping chain onto the subsumer, re-deriving the bottom
    box's expressions from the subsumer's outputs (pull-up conditions of
    4.2.4). Returns (chain boxes, thread tracker) or None."""
    source = pair.match.chain
    rq_name = pair.subsumer_q.name

    def in_subsumer_qnc(expr: Expr) -> Expr:
        def visit(node: Expr) -> Expr | None:
            if isinstance(node, ColumnRef) and node.qualifier == MAIN:
                return ColumnRef(rq_name, node.name)
            return None

        return expr.transform(visit)

    chain: list = []
    thread = _ThreadedColumns(ctx)
    below = SubsumerRef(subsumer)
    for index, box in enumerate(source):
        if index == 0:
            if isinstance(box, GroupByBox):
                # Chain starts directly with a GROUP-BY: synthesize the
                # bottom SELECT that re-derives its inputs.
                bottom = SelectBox(ctx.fresh_name("Sel"))
                bottom.add_quantifier(MAIN, below)
                for name in box.child_quantifier.box.output_names:
                    derived = derive_scalar(
                        ColumnRef(rq_name, name), scope
                    )
                    if derived is None:
                        return None
                    bottom.add_output(QCL(name, derived, nullable=True))
                chain.append(bottom)
                below = bottom
                clone = clone_chain_box(box, below, ctx.fresh_name("GB"))
                chain.append(clone)
                below = clone
                continue
            rebuilt = _rederive_bottom_select(box, scope, in_subsumer_qnc, ctx, below)
            if rebuilt is None:
                return None
            chain.append(rebuilt)
            below = rebuilt
            continue
        clone = clone_chain_box(
            box, below, ctx.fresh_name("GB" if isinstance(box, GroupByBox) else "Sel")
        )
        chain.append(clone)
        below = clone
    return chain, thread


def _rederive_bottom_select(
    box: SelectBox,
    scope: DerivationScope,
    in_subsumer_qnc,
    ctx: MatchContext,
    leaf,
) -> SelectBox | None:
    rebuilt = SelectBox(ctx.fresh_name("Sel"))
    rebuilt.add_quantifier(MAIN, leaf)
    for quantifier in box.quantifiers():
        if quantifier.name != MAIN:
            rebuilt.add_quantifier(quantifier.name, quantifier.box)
    for predicate in box.predicates:
        derived = derive_scalar(in_subsumer_qnc(predicate), scope)
        if derived is None:
            return None
        rebuilt.add_predicate(derived)
    for qcl in box.outputs:
        derived = derive_scalar(in_subsumer_qnc(qcl.expr), scope)
        if derived is None:
            return None
        rebuilt.add_output(QCL(qcl.name, derived, qcl.nullable))
    return rebuilt


def _single_row_box(box) -> bool:
    """True when the box provably produces exactly one row (a scalar
    aggregate: SELECT over a grand-total GROUP-BY)."""
    current = box
    while isinstance(current, SelectBox) and len(current.quantifiers()) == 1:
        if current.predicates:
            return False
        current = current.quantifiers()[0].box
    return isinstance(current, GroupByBox) and current.grouping_sets == ((),)


def _has_cross_child_predicates(
    box: SelectBox, pairs: list[MatchedChildPair]
) -> bool:
    """Does the box join its matched children to each other?"""
    names = set()
    for pair in pairs:
        for quantifier in box.quantifiers():
            if quantifier.box is pair.subsumee_q.box or quantifier.box is pair.subsumer_q.box:
                names.add(quantifier.name)
    for predicate in box.predicates:
        qualifiers = {ref.qualifier for ref in predicate.column_refs()}
        if len(qualifiers & names) > 1:
            return True
    return False


def _columns_used_from(box: SelectBox, qualifier: str) -> list[str]:
    used: list[str] = []
    exprs: list[Expr] = list(box.predicates)
    exprs.extend(qcl.expr for qcl in box.outputs)
    for expr in exprs:
        for ref in expr.column_refs():
            if ref.qualifier == qualifier and ref.name not in used:
                used.append(ref.name)
    return used
