"""Expression and aggregate derivation (Sections 4.1.2 and 6).

*Scalar derivation* rewrites an expression (already translated into the
subsumer's QNC context) as a function of the subsumer's **output**
columns and rejoin columns. The tree is collapsed greedily top-down:
whole subtrees that equal a subsumer QCL (modulo column equivalence)
become output references; n-ary ``+``/``*`` nodes are covered by
*multiset subset matching* against QCL operand sets, largest first, which
realizes the paper's "minimum number of subsumer QCLs" preference
(Figure 5: ``amt`` is derived from ``value`` and ``disc``, not from
``qty``, ``price`` and ``disc``).

*Aggregate derivation* implements the re-aggregation rules (a)–(g) of
Section 4.1.2, plus AVG as the algebraic SUM/COUNT combination the paper
licenses. A derivation is returned as an :class:`AggRecipe`: column(s) to
compute below the regrouping GROUP-BY, the aggregate(s) to apply, and a
final combining expression.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.expr.equivalence import EquivalenceClasses, canonical
from repro.expr.nodes import (
    AggCall,
    ColumnRef,
    Expr,
    Literal,
    NaryOp,
)
from repro.matching.framework import MAIN


class DerivationScope:
    """The vocabulary a derivation may use.

    ``outputs`` maps usable subsumer output names to their defining
    expressions (over the subsumer box's QNCs); ``classes`` holds the
    column equivalences valid in that context; ``rejoin_names`` are
    quantifier names whose columns may be used verbatim.
    """

    def __init__(
        self,
        outputs: dict[str, Expr],
        classes: EquivalenceClasses | None = None,
        rejoin_names: set[str] | None = None,
        qualifier: str = MAIN,
    ):
        self.classes = classes or EquivalenceClasses()
        self.rejoin_names = rejoin_names or set()
        self.qualifier = qualifier
        self._by_canonical: dict[Expr, str] = {}
        for name, expr in outputs.items():
            key = canonical(expr, self.classes)
            # Prefer the first output computing a given expression.
            self._by_canonical.setdefault(key, name)

    def lookup(self, expr: Expr) -> str | None:
        """The subsumer output computing ``expr``, if any."""
        return self._by_canonical.get(canonical(expr, self.classes))

    def out_ref(self, name: str) -> ColumnRef:
        return ColumnRef(self.qualifier, name)

    def canonical_outputs(self) -> dict[Expr, str]:
        return dict(self._by_canonical)


def derive_scalar(expr: Expr, scope: DerivationScope) -> Expr | None:
    """Rewrite ``expr`` over the scope's outputs; None when impossible."""
    name = scope.lookup(expr)
    if name is not None:
        return scope.out_ref(name)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, ColumnRef):
        if expr.qualifier in scope.rejoin_names:
            return expr
        return None  # equivalence-class members were covered by lookup()
    if isinstance(expr, AggCall):
        return None  # aggregates are derived by derive_aggregate()
    if isinstance(expr, NaryOp) and expr.op in ("+", "*"):
        covered = _cover_nary(expr, scope)
        if covered is not None:
            return covered
    children = expr.children()
    derived_children = []
    for child in children:
        derived = derive_scalar(child, scope)
        if derived is None:
            return None
        derived_children.append(derived)
    return expr.with_children(tuple(derived_children))


def _cover_nary(expr: NaryOp, scope: DerivationScope) -> Expr | None:
    """Cover an n-ary +/* node with as few subsumer outputs as possible.

    Example: target ``qty * price * (1 - disc)``, available outputs
    ``value := qty * price`` and ``disc`` — the multiset {qty, price} of
    ``value`` is subtracted from the target's operand multiset, and the
    remainder ``1 - disc`` derives recursively.
    """
    target = Counter(canonical(operand, scope.classes) for operand in expr.operands)
    # Candidate outputs whose expression is an n-ary node of the same op.
    candidates = []
    for key, name in scope.canonical_outputs().items():
        if isinstance(key, NaryOp) and key.op == expr.op:
            candidates.append((len(key.operands), key, name))
    candidates.sort(key=lambda item: -item[0])  # largest first

    parts: list[Expr] = []
    remaining = Counter(target)
    for _, key, name in candidates:
        needed = Counter(key.operands)
        while needed and not (needed - remaining):
            parts.append(scope.out_ref(name))
            remaining = remaining - needed
    if remaining == target:
        return None  # nothing matched; let the generic recursion handle it
    by_canonical: dict[Expr, Expr] = {}
    for operand in expr.operands:
        by_canonical.setdefault(canonical(operand, scope.classes), operand)
    for key, count in remaining.items():
        derived = derive_scalar(by_canonical[key], scope)
        if derived is None:
            return None
        parts.extend([derived] * count)
    if len(parts) == 1:
        return parts[0]
    return NaryOp(expr.op, tuple(parts))


# ----------------------------------------------------------------------
# Aggregate derivation (rules a-g + AVG)
# ----------------------------------------------------------------------
@dataclass
class AggComponent:
    """One column to carry through the regrouping compensation:
    ``pre_expr`` is computed in the SELECT box below the GROUP-BY, and
    ``func``/``distinct`` aggregate it during regrouping."""

    pre_expr: Expr
    func: str
    distinct: bool = False


@dataclass
class AggRecipe:
    """How to recompute one subsumee aggregate from subsumer outputs."""

    components: list[AggComponent]
    combine: Callable[[list[ColumnRef]], Expr]
    rule: str  # which paper rule produced it, for explain output
    #: True when the GROUP-BY output IS the result (no combining SELECT)
    simple: bool = False

    @classmethod
    def single(cls, component: AggComponent, rule: str) -> "AggRecipe":
        return cls([component], lambda refs: refs[0], rule, simple=True)


class AggregateScope:
    """Subsumer-side facts needed by the aggregate rules."""

    def __init__(
        self,
        scalar: DerivationScope,
        aggregate_outputs: dict[str, AggCall],
        grouping_outputs: dict[str, Expr],
        arg_nullable: Callable[[Expr], bool],
        usable_grouping: set[str] | None = None,
        empty_groups_possible: bool = False,
    ):
        #: True when the regrouping includes the empty (grand-total)
        #: grouping set — the only case where a group can be empty, which
        #: makes SUM-based COUNT derivations yield NULL instead of 0.
        self.empty_groups_possible = empty_groups_possible
        #: scope over *grouping* outputs + rejoins (scalar vocabulary)
        self.scalar = scalar
        #: subsumer aggregate output name -> its AggCall (args canonical,
        #: in subsumer QNC context)
        self.aggregate_outputs = aggregate_outputs
        #: subsumer grouping output name -> defining expr (subsumer QNCs)
        self.grouping_outputs = grouping_outputs
        self.arg_nullable = arg_nullable
        self.usable_grouping = (
            set(grouping_outputs) if usable_grouping is None else set(usable_grouping)
        )

    # -- helpers -------------------------------------------------------
    def find_aggregate(
        self, func: str, arg: Expr | None, distinct: bool = False
    ) -> str | None:
        """A subsumer aggregate output computing exactly func(arg)."""
        wanted = None if arg is None else canonical(arg, self.scalar.classes)
        for name, call in self.aggregate_outputs.items():
            if call.func != func or call.distinct != distinct:
                continue
            have = (
                None
                if call.arg is None
                else canonical(call.arg, self.scalar.classes)
            )
            if have == wanted:
                return name
        return None

    def row_count_output(self) -> str | None:
        """An output counting subsumer *rows*: COUNT(*) or COUNT(z) with z
        non-nullable (rule a)."""
        for name, call in self.aggregate_outputs.items():
            if call.func != "count" or call.distinct:
                continue
            if call.arg is None:
                return name
            if not self.arg_nullable(call.arg):
                return name
        return None

    def grouping_output_for(self, arg: Expr) -> str | None:
        """A *usable* grouping output equal to ``arg``."""
        name = self.scalar.lookup(arg)
        if name is not None and name in self.usable_grouping:
            return name
        return None


def derive_aggregate(call: AggCall, translated_arg: Expr | None, scope: AggregateScope) -> AggRecipe | None:
    """Derive subsumee aggregate ``call`` (its argument already translated
    into the subsumer's QNC context) under regrouping. Returns None when
    no rule applies — e.g. COUNT(DISTINCT x) when x is not a grouping
    column, the paper's Q11.3 non-match."""
    func = call.func
    out = scope.scalar.out_ref

    if func == "count" and not call.distinct:
        source = None
        if call.arg is None:
            source = scope.row_count_output()  # rule (a)
        else:
            source = scope.find_aggregate("count", translated_arg)  # rule (b)
            if source is None and not scope.arg_nullable(translated_arg):
                source = scope.row_count_output()
        if source is None:
            return None
        component = AggComponent(out(source), "sum")
        if scope.empty_groups_possible:
            # COUNT over an empty group is 0, but SUM(cnt) is NULL; the
            # grand-total grouping set can produce an empty group.
            def combine(refs: list[ColumnRef]) -> Expr:
                from repro.expr.nodes import FuncCall, Literal

                return FuncCall("coalesce", (refs[0], Literal(0)))

            return AggRecipe([component], combine, rule="count->coalesce(sum(cnt),0)")
        return AggRecipe.single(component, rule="count->sum(cnt)")

    if func == "sum" and not call.distinct:
        source = scope.find_aggregate("sum", translated_arg)
        if source is not None:  # rule (c), first form
            return AggRecipe.single(
                AggComponent(out(source), "sum"), rule="sum->sum(sum)"
            )
        grouping = scope.grouping_output_for(translated_arg)
        row_count = scope.row_count_output()
        if grouping is not None and row_count is not None:  # rule (c), y*cnt
            pre = NaryOp("*", (out(grouping), out(row_count)))
            return AggRecipe.single(
                AggComponent(pre, "sum"), rule="sum->sum(y*cnt)"
            )
        return None

    if func in ("min", "max") and not call.distinct:
        source = scope.find_aggregate(func, translated_arg)
        if source is not None:  # rules (d)/(e), first form
            return AggRecipe.single(
                AggComponent(out(source), func), rule=f"{func}->{func}({func})"
            )
        grouping = scope.grouping_output_for(translated_arg)
        if grouping is not None:  # rules (d)/(e), grouping-column form
            return AggRecipe.single(
                AggComponent(out(grouping), func), rule=f"{func}->{func}(y)"
            )
        return None

    if func in ("count", "sum") and call.distinct:  # rules (f)/(g)
        grouping = scope.grouping_output_for(translated_arg)
        if grouping is None:
            return None
        # The paper's rules (f)/(g) read COUNT(y)/SUM(y); that relies on y
        # being unique within each regrouped group. Keeping DISTINCT is
        # always sound and costs nothing in this engine.
        return AggRecipe.single(
            AggComponent(out(grouping), func, distinct=True),
            rule=f"{func}(distinct)->{func}(distinct y)",
        )

    if func == "avg" and not call.distinct:
        # AVG(x) = SUM(x) / COUNT(x): combine rules (b) and (c). The
        # count stays un-coalesced: over an empty group NULL/NULL is the
        # correct NULL (coalescing to 0 would divide by zero).
        sum_recipe = derive_aggregate(
            AggCall("sum", call.arg), translated_arg, scope
        )
        saved_flag = scope.empty_groups_possible
        scope.empty_groups_possible = False
        try:
            count_recipe = derive_aggregate(
                AggCall("count", call.arg), translated_arg, scope
            )
        finally:
            scope.empty_groups_possible = saved_flag
        if sum_recipe is None or count_recipe is None:
            return None
        components = sum_recipe.components + count_recipe.components

        def combine(refs: list[ColumnRef]) -> Expr:
            sum_refs = refs[: len(sum_recipe.components)]
            count_refs = refs[len(sum_recipe.components):]
            from repro.expr.nodes import BinaryOp

            return BinaryOp(
                "/", sum_recipe.combine(sum_refs), count_recipe.combine(count_refs)
            )

        return AggRecipe(components, combine, rule="avg->sum/count")

    return None


def match_aggregate_exact(
    call: AggCall, translated_arg: Expr | None, scope: AggregateScope
) -> str | None:
    """For no-regroup compensation: the subsumee aggregate must equal a
    subsumer aggregate output outright (condition 2 of 4.1.2)."""
    return scope.find_aggregate(call.func, translated_arg, call.distinct)
