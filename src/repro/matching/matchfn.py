"""The match function: pattern dispatch (Section 3).

The two common conditions of every pattern are enforced here: the boxes
must be of the same type (condition 2 — base tables match when they scan
the same stored table), and at least one subsumee child must match a
subsumer child (condition 1, checked inside the pattern routines, which
need the pairing anyway).
"""

from __future__ import annotations

from repro.matching.framework import MatchContext, MatchResult
from repro.matching.groupby_boxes import match_groupby_boxes
from repro.matching.select_boxes import match_select_boxes
from repro.obs import trace as _trace
from repro.qgm.boxes import BaseTableBox, GroupByBox, QGMBox, SelectBox


def match_boxes(
    subsumee: QGMBox, subsumer: QGMBox, ctx: MatchContext
) -> MatchResult | None:
    """Try to match one (subsumee, subsumer) pair; child pairs must have
    been attempted already (the navigator guarantees bottom-up order)."""
    governor = ctx.governor
    if governor is not None:
        governor.tick_match()
    if isinstance(subsumee, BaseTableBox) and isinstance(subsumer, BaseTableBox):
        return _match_base_tables(subsumee, subsumer)
    if isinstance(subsumee, SelectBox) and isinstance(subsumer, SelectBox):
        return match_select_boxes(subsumee, subsumer, ctx)
    if isinstance(subsumee, GroupByBox) and isinstance(subsumer, GroupByBox):
        return match_groupby_boxes(subsumee, subsumer, ctx)
    # common condition 2: same box type
    t = _trace.ACTIVE
    if t is not None:
        t.reject(
            "box-kind",
            detail=f"{type(subsumee).__name__} vs {type(subsumer).__name__}",
        )
    return None


def _match_base_tables(
    subsumee: BaseTableBox, subsumer: BaseTableBox
) -> MatchResult | None:
    if subsumee.table_name.lower() != subsumer.table_name.lower():
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "base-table",
                detail=f"{subsumee.table_name} != {subsumer.table_name}",
            )
        return None
    column_map = {name: name for name in subsumee.output_names}
    return MatchResult(subsumee, subsumer, [], column_map, pattern="base-table")
