"""The matching algorithm: navigator, match function, patterns,
expression translation and derivation."""

from repro.matching.framework import MAIN, MatchContext, MatchResult, SubsumerRef
from repro.matching.matchfn import match_boxes
from repro.matching.navigator import match_graphs, root_matches

__all__ = [
    "MAIN",
    "MatchContext",
    "MatchResult",
    "SubsumerRef",
    "match_boxes",
    "match_graphs",
    "root_matches",
]
