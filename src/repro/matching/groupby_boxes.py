"""GROUP-BY/GROUP-BY matching — patterns 4.1.2, 4.2.1, 4.2.2, 5.1, 5.2.

One analysis routine (:func:`_try_cuboid`) covers the simple patterns and
their cube generalizations: it checks the conditions of 4.1.2/4.2.1
*restricted to one subsumer grouping set* (Section 5.1's trick), decides
whether regrouping compensation is needed, derives the aggregates with
the rules of Section 4.1.2, and builds the compensation (slicing
predicate + pulled-up predicates + optional regrouping GROUP-BY).

Pattern 4.2.2 (a grouping child compensation) is the paper's recursive
case: the lowest GROUP-BY of the child chain is matched against the
subsumer, and the rest of the chain plus a copy of the subsumee are
stacked above the intermediate compensation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.equivalence import EquivalenceClasses, canonical
from repro.expr.nodes import AggCall, ColumnRef, Expr, IsNull
from repro.matching.derivation import (
    AggRecipe,
    AggregateScope,
    DerivationScope,
    derive_aggregate,
    derive_scalar,
    match_aggregate_exact,
)
from repro.matching.framework import (
    MAIN,
    MatchContext,
    MatchResult,
    SubsumerRef,
    chain_has_grouping,
    chain_predicates,
    chain_rejoin_quantifiers,
    clone_chain_box,
    inline_through_chain,
)
from repro.matching.translation import ChildTranslator, MatchedChildPair
from repro.obs import trace as _trace
from repro.qgm.unparse import render_expr
from repro.qgm.boxes import (
    BaseTableBox,
    GroupByBox,
    QCL,
    QGMBox,
    Quantifier,
    SelectBox,
    expr_nullable,
)


def match_groupby_boxes(
    subsumee: GroupByBox, subsumer: GroupByBox, ctx: MatchContext
) -> MatchResult | None:
    child_match = ctx.get(
        subsumee.child_quantifier.box, subsumer.child_quantifier.box
    )
    if child_match is None:
        # common condition 1
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "child-match", "4.1.2",
                "the GROUP-BY inputs did not match",
            )
        return None
    if any(
        isinstance(box, SelectBox) and box.distinct for box in child_match.chain
    ):
        # duplicate elimination breaks multiplicity reasoning
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "regroupability", "4.1.2",
                "child compensation eliminates duplicates (DISTINCT), so "
                "multiplicities cannot be re-derived",
            )
        return None
    if chain_has_grouping(child_match.chain):
        return _match_via_recursion(subsumee, subsumer, child_match, ctx)
    if subsumee.is_multidimensional and subsumer.is_multidimensional:
        return _match_cube_cube(subsumee, subsumer, child_match, ctx)
    # Subsumee multidimensional over a simple subsumer is not in the
    # paper's pattern list but is sound: treat the subsumee as a simple
    # GROUP-BY over the union of its grouping sets and regroup with its
    # own supergroup structure (the same move 5.2 makes internally).
    return _match_against_best_cuboid(subsumee, subsumer, child_match, ctx)


def _match_against_best_cuboid(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    child_match: MatchResult,
    ctx: MatchContext,
) -> MatchResult | None:
    """5.1 (and its degenerate simple/simple case): try each subsumer
    cuboid, preferring no-regroup matches, then fewer grouping columns."""
    candidates = []
    for cuboid in subsumer.grouping_sets:
        analysis = _try_cuboid(subsumee, subsumer, child_match, ctx, cuboid)
        if analysis is not None:
            candidates.append(analysis)
    if not candidates:
        return None
    if ctx.option("prefer_small_cuboid"):
        candidates.sort(key=lambda a: (a.regroup_needed, len(a.cuboid)))
    else:  # ablation: take the largest usable cuboid instead
        candidates.sort(key=lambda a: (a.regroup_needed, -len(a.cuboid)))
    return _build_compensation(subsumee, subsumer, ctx, candidates[0])


# ----------------------------------------------------------------------
# Analysis of one (subsumee, subsumer, cuboid) combination
# ----------------------------------------------------------------------
@dataclass
class _Analysis:
    cuboid: tuple[str, ...]
    rejoins: list[Quantifier]
    derived_preds: list[Expr]
    derived_grouping: dict[str, Expr]  # subsumee grouping output -> derived expr
    regroup_needed: bool
    agg_exact: dict[str, str]  # subsumee agg output -> subsumer agg output
    agg_recipes: dict[str, AggRecipe]
    slicing: list[Expr]


def _try_cuboid(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    child_match: MatchResult,
    ctx: MatchContext,
    cuboid: tuple[str, ...],
) -> _Analysis | None:
    rq = subsumer.child_quantifier
    rejoins = chain_rejoin_quantifiers(child_match.chain)
    rejoin_names = {q.name for q in rejoins}
    translator = ChildTranslator(
        [MatchedChildPair(subsumee.child_quantifier, rq, child_match)],
        rejoin_names,
    )

    t = _trace.ACTIVE
    if subsumer.is_multidimensional and not _sliceable(subsumer, ctx):
        if t is not None:
            t.reject(
                "regroupability", "5.1",
                "cube AST not sliceable: a grouping column is nullable or "
                "computed, so IS [NOT] NULL slicing is unsound",
            )
        return None

    if ctx.option("column_equivalence"):
        classes = _lifted_output_classes(rq)
    else:  # ablation knob
        classes = EquivalenceClasses()
    grouping_outputs = {
        name: subsumer.output(name).expr
        for name in subsumer.grouping_items
        if name in cuboid
    }
    scope = DerivationScope(grouping_outputs, classes, rejoin_names)

    # Pull-up condition: child-compensation predicates must be derivable
    # from the cuboid's grouping columns and/or rejoin columns.
    derived_preds: list[Expr] = []
    for index, predicate in chain_predicates(child_match.chain):
        inlined = inline_through_chain(predicate, child_match.chain, index, rq.name)
        derived = derive_scalar(inlined, scope)
        if derived is None:
            if t is not None:
                t.reject(
                    "predicate-subsumption", "4.2.1",
                    "pulled-up child predicate not derivable from grouping "
                    "columns: " + render_expr(predicate),
                )
            return None
        derived_preds.append(derived)

    # Condition 1: subsumee grouping columns derivable from the cuboid's
    # grouping columns and/or rejoins.
    derived_grouping: dict[str, Expr] = {}
    for qcl in subsumee.grouping_outputs():
        translated = translator.translate(qcl.expr)
        if translated.contains_aggregate():
            if t is not None:
                t.reject(
                    "qcl-derivation", "4.1.2 cond 1",
                    f"grouping column {qcl.name!r} translates to an "
                    "aggregate of the AST",
                )
            return None
        derived = derive_scalar(translated, scope)
        if derived is None:
            if t is not None:
                t.reject(
                    "qcl-derivation", "4.1.2 cond 1",
                    f"grouping column {qcl.name!r} not derivable from the "
                    "cuboid: " + render_expr(qcl.expr),
                )
            return None
        derived_grouping[qcl.name] = derived

    regroup_needed = subsumee.is_multidimensional or not _grouping_sets_align(
        derived_grouping, cuboid, derived_preds, rejoins, ctx
    )

    # Aggregates. Translate each argument once; aggregation over rejoin
    # columns is outside the pattern (the 4.2.1 assumption).
    empty_groups = any(not s for s in subsumee.grouping_sets)
    agg_scope = _aggregate_scope(
        subsumer, rq, scope, cuboid, empty_groups_possible=empty_groups
    )
    translated_args: dict[str, Expr | None] = {}
    for qcl in subsumee.aggregate_outputs():
        call = qcl.expr
        translated_arg = (
            translator.translate(call.arg) if call.arg is not None else None
        )
        if translated_arg is not None and (
            translated_arg.contains_aggregate()
            or any(
                ref.qualifier in rejoin_names
                for ref in translated_arg.column_refs()
            )
        ):
            if t is not None:
                t.reject(
                    "aggregate-rederivation", "4.2.1",
                    f"aggregate {qcl.name!r} ranges over rejoin or "
                    "already-aggregated columns",
                )
            return None
        translated_args[qcl.name] = translated_arg

    # Without regrouping every aggregate must correspond to a subsumer
    # aggregate outright (condition 2 of 4.1.2). If one is missing we fall
    # back to regrouping — re-aggregating within unchanged groups is sound.
    agg_exact: dict[str, str] = {}
    if not regroup_needed:
        for qcl in subsumee.aggregate_outputs():
            exact = match_aggregate_exact(
                qcl.expr, translated_args[qcl.name], agg_scope
            )
            if exact is None:
                regroup_needed = True
                agg_exact.clear()
                break
            agg_exact[qcl.name] = exact

    agg_recipes: dict[str, AggRecipe] = {}
    if regroup_needed:
        for qcl in subsumee.aggregate_outputs():
            recipe = derive_aggregate(
                qcl.expr, translated_args[qcl.name], agg_scope
            )
            if recipe is None:
                if t is not None:
                    t.reject(
                        "aggregate-rederivation", "4.1.2 rules a-g",
                        f"{qcl.expr.func.upper()} output {qcl.name!r} not "
                        "re-derivable from the AST's aggregates (no rule "
                        "(a)-(g) applies)",
                    )
                return None
            agg_recipes[qcl.name] = recipe

    slicing = _slicing_predicate(subsumer, cuboid)
    return _Analysis(
        cuboid=cuboid,
        rejoins=rejoins,
        derived_preds=derived_preds,
        derived_grouping=derived_grouping,
        regroup_needed=regroup_needed,
        agg_exact=agg_exact,
        agg_recipes=agg_recipes,
        slicing=slicing,
    )


def _aggregate_scope(
    subsumer: GroupByBox,
    rq: Quantifier,
    scalar: DerivationScope,
    cuboid: tuple[str, ...],
    empty_groups_possible: bool = False,
) -> AggregateScope:
    aggregate_outputs = {
        qcl.name: qcl.expr for qcl in subsumer.aggregate_outputs()
    }
    grouping_outputs = {
        name: subsumer.output(name).expr for name in subsumer.grouping_items
    }

    def arg_nullable(arg: Expr) -> bool:
        def resolve(ref: ColumnRef) -> bool:
            if ref.qualifier != rq.name:
                return True
            return rq.box.output(ref.name).nullable

        return expr_nullable(arg, resolve)

    return AggregateScope(
        scalar,
        aggregate_outputs,
        grouping_outputs,
        arg_nullable,
        usable_grouping=set(cuboid),
        empty_groups_possible=empty_groups_possible,
    )


def _grouping_sets_align(
    derived_grouping: dict[str, Expr],
    cuboid: tuple[str, ...],
    derived_preds: list[Expr],
    rejoins: list[Quantifier],
    ctx: MatchContext,
) -> bool:
    """No regrouping needed: the derived grouping set equals the cuboid
    (modulo compensation equalities) and every rejoin is 1:N with the
    rejoin on the 1 side, keyed by grouping columns (4.2.1's rule)."""
    classes = EquivalenceClasses()
    for predicate in derived_preds:
        classes.add_predicate(predicate)
    subsumee_keys = {canonical(e, classes) for e in derived_grouping.values()}
    cuboid_keys = {canonical(ColumnRef(MAIN, g), classes) for g in cuboid}
    if subsumee_keys != cuboid_keys:
        return False
    for rejoin in rejoins:
        if not _rejoin_is_one_to_n(rejoin, derived_preds, subsumee_keys, classes, ctx):
            return False
    return True


def _rejoin_is_one_to_n(
    rejoin: Quantifier,
    derived_preds: list[Expr],
    grouping_keys: set[Expr],
    classes: EquivalenceClasses,
    ctx: MatchContext,
) -> bool:
    if not isinstance(rejoin.box, BaseTableBox):
        return False
    keyed_columns: set[str] = set()
    for predicate in derived_preds:
        if not (
            hasattr(predicate, "op")
            and getattr(predicate, "op", None) == "="
            and isinstance(getattr(predicate, "left", None), ColumnRef)
            and isinstance(getattr(predicate, "right", None), ColumnRef)
        ):
            continue
        left, right = predicate.left, predicate.right
        for mine, other in ((left, right), (right, left)):
            if mine.qualifier != rejoin.name:
                continue
            if canonical(other, classes) in grouping_keys:
                keyed_columns.add(mine.name)
    return rejoin.box.schema.is_unique_key(keyed_columns)


def _lifted_output_classes(quantifier: Quantifier) -> EquivalenceClasses:
    """Column equivalences among a child box's *outputs*, lifted to the
    consumer's QNC space (how ``flid``/``lid`` equality survives a box
    boundary)."""
    lifted = EquivalenceClasses()
    box = quantifier.box
    if not isinstance(box, SelectBox):
        return lifted
    inner = box.equivalence_classes()
    by_canonical: dict[Expr, ColumnRef] = {}
    for qcl in box.outputs:
        if qcl.expr is None:
            continue
        key = canonical(qcl.expr, inner)
        ref = ColumnRef(quantifier.name, qcl.name)
        if key in by_canonical:
            lifted.add_equality(by_canonical[key], ref)
        else:
            by_canonical[key] = ref
    return lifted


def _sliceable(subsumer: GroupByBox, ctx: MatchContext) -> bool:
    """Slicing with IS [NOT] NULL is sound only when every grouping
    column's source is non-nullable (the paper's standing assumption)."""
    child = subsumer.child_quantifier.box
    for name in subsumer.grouping_items:
        expr = subsumer.output(name).expr
        if not isinstance(expr, ColumnRef):
            return False
        if child.output(expr.name).nullable:
            return False
    return True


def _slicing_predicate(
    subsumer: GroupByBox, cuboid: tuple[str, ...]
) -> list[Expr]:
    if not subsumer.is_multidimensional:
        return []
    chosen = set(cuboid)
    return [
        IsNull(ColumnRef(MAIN, name), negated=(name in chosen))
        for name in subsumer.grouping_items
    ]


# ----------------------------------------------------------------------
# Compensation construction
# ----------------------------------------------------------------------
def _build_compensation(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    ctx: MatchContext,
    analysis: _Analysis,
) -> MatchResult:
    pattern = _pattern_name(subsumee, subsumer, analysis)
    if not analysis.regroup_needed:
        return _build_select_only(subsumee, subsumer, ctx, analysis, pattern)
    return _build_regrouping(subsumee, subsumer, ctx, analysis, pattern)


def _pattern_name(
    subsumee: GroupByBox, subsumer: GroupByBox, analysis: _Analysis
) -> str:
    if subsumer.is_multidimensional:
        return "5.2" if subsumee.is_multidimensional else "5.1"
    if analysis.derived_preds or analysis.rejoins:
        return "4.2.1"
    return "4.1.2"


def _build_select_only(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    ctx: MatchContext,
    analysis: _Analysis,
    pattern: str,
) -> MatchResult:
    exact = (
        not analysis.derived_preds
        and not analysis.rejoins
        and not analysis.slicing
        and all(
            isinstance(expr, ColumnRef) and expr.qualifier == MAIN
            for expr in analysis.derived_grouping.values()
        )
    )
    if exact:
        column_map = {
            name: expr.name for name, expr in analysis.derived_grouping.items()
        }
        column_map.update(analysis.agg_exact)
        return MatchResult(subsumee, subsumer, [], column_map, pattern=pattern)

    comp = SelectBox(ctx.fresh_name("Sel"))
    comp.add_quantifier(MAIN, SubsumerRef(subsumer))
    for quantifier in analysis.rejoins:
        comp.add_quantifier(quantifier.name, quantifier.box)
    comp.predicates = analysis.slicing + analysis.derived_preds
    for qcl in subsumee.outputs:
        if qcl.name in analysis.derived_grouping:
            expr: Expr = analysis.derived_grouping[qcl.name]
        else:
            expr = ColumnRef(MAIN, analysis.agg_exact[qcl.name])
        comp.add_output(QCL(qcl.name, expr, qcl.nullable))
    return MatchResult(subsumee, subsumer, [comp], pattern=pattern)


def _build_regrouping(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    ctx: MatchContext,
    analysis: _Analysis,
    pattern: str,
) -> MatchResult:
    bottom = SelectBox(ctx.fresh_name("Sel"))
    bottom.add_quantifier(MAIN, SubsumerRef(subsumer))
    for quantifier in analysis.rejoins:
        bottom.add_quantifier(quantifier.name, quantifier.box)
    bottom.predicates = analysis.slicing + analysis.derived_preds

    component_names: dict[str, list[str]] = {}
    used_names = set(subsumee.output_names)
    for name, expr in analysis.derived_grouping.items():
        bottom.add_output(QCL(name, expr, subsumee.output(name).nullable))
    for agg_name, recipe in analysis.agg_recipes.items():
        names = []
        for i, component in enumerate(recipe.components):
            if len(recipe.components) == 1:
                column = agg_name
            else:
                column = f"{agg_name}_{i + 1}"
                while column in used_names:
                    column = f"{column}x"
            used_names.add(column)
            bottom.add_output(QCL(column, component.pre_expr, nullable=True))
            names.append(column)
        component_names[agg_name] = names

    regroup = GroupByBox(ctx.fresh_name("GB"), MAIN, bottom)
    regroup.set_grouping(subsumee.grouping_items, subsumee.grouping_sets)
    needs_top = any(
        not recipe.simple for recipe in analysis.agg_recipes.values()
    )
    for qcl in subsumee.outputs:
        if qcl.name in analysis.derived_grouping:
            regroup.add_grouping_output(qcl.name, qcl.name, qcl.nullable)
        else:
            recipe = analysis.agg_recipes[qcl.name]
            for column, component in zip(
                component_names[qcl.name], recipe.components
            ):
                regroup.add_aggregate_output(
                    column,
                    AggCall(component.func, ColumnRef(MAIN, column), component.distinct),
                    nullable=True,
                )
    chain: list[QGMBox] = [bottom, regroup]
    if needs_top:
        top = SelectBox(ctx.fresh_name("Sel"))
        top.add_quantifier(MAIN, regroup)
        for qcl in subsumee.outputs:
            if qcl.name in analysis.derived_grouping:
                top.add_output(QCL(qcl.name, ColumnRef(MAIN, qcl.name), qcl.nullable))
            else:
                recipe = analysis.agg_recipes[qcl.name]
                refs = [ColumnRef(MAIN, c) for c in component_names[qcl.name]]
                top.add_output(QCL(qcl.name, recipe.combine(refs), qcl.nullable))
        chain.append(top)
    return MatchResult(subsumee, subsumer, chain, pattern=pattern)


# ----------------------------------------------------------------------
# 5.2: cube query against cube AST
# ----------------------------------------------------------------------
def _match_cube_cube(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    child_match: MatchResult,
    ctx: MatchContext,
) -> MatchResult | None:
    # First try the no-regroup path: every subsumee cuboid matched exactly
    # with some subsumer cuboid; a disjunctive slicing predicate selects
    # them all at once.
    direct = _match_cube_cube_direct(subsumee, subsumer, child_match, ctx)
    if direct is not None:
        return direct
    # Otherwise treat the subsumee as a simple GROUP-BY over the union of
    # its grouping sets and regroup with its own supergroup structure.
    return _match_against_best_cuboid(subsumee, subsumer, child_match, ctx)


def _match_cube_cube_direct(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    child_match: MatchResult,
    ctx: MatchContext,
) -> MatchResult | None:
    if not _sliceable(subsumer, ctx):
        return None
    rq = subsumer.child_quantifier
    rejoins = chain_rejoin_quantifiers(child_match.chain)
    rejoin_names = {q.name for q in rejoins}
    translator = ChildTranslator(
        [MatchedChildPair(subsumee.child_quantifier, rq, child_match)],
        rejoin_names,
    )
    classes = _lifted_output_classes(rq)
    grouping_outputs = {
        name: subsumer.output(name).expr for name in subsumer.grouping_items
    }
    scope = DerivationScope(grouping_outputs, classes, rejoin_names)

    # Every subsumee grouping column must be exactly a subsumer grouping
    # column for the direct (no-regroup) path.
    mapping: dict[str, str] = {}
    for qcl in subsumee.grouping_outputs():
        derived = derive_scalar(translator.translate(qcl.expr), scope)
        if not isinstance(derived, ColumnRef) or derived.qualifier != MAIN:
            return None
        mapping[qcl.name] = derived.name

    subsumer_sets = {frozenset(s) for s in subsumer.grouping_sets}
    chosen: list[tuple[str, ...]] = []
    for grouping_set in subsumee.grouping_sets:
        image = frozenset(mapping[name] for name in grouping_set)
        if image not in subsumer_sets:
            return None
        for candidate in subsumer.grouping_sets:
            if frozenset(candidate) == image:
                chosen.append(candidate)
                break

    # Child-compensation predicates must be derivable from the grouping
    # columns of *every* selected cuboid (they filter each one).
    derived_preds: list[Expr] = []
    for index, predicate in chain_predicates(child_match.chain):
        inlined = inline_through_chain(predicate, child_match.chain, index, rq.name)
        common = set(subsumer.grouping_items)
        for cuboid in chosen:
            common &= set(cuboid)
        restricted = DerivationScope(
            {name: subsumer.output(name).expr for name in common},
            classes,
            rejoin_names,
        )
        derived = derive_scalar(inlined, restricted)
        if derived is None:
            return None
        derived_preds.append(derived)

    agg_scope = _aggregate_scope(subsumer, rq, scope, subsumer.grouping_items)
    agg_map: dict[str, str] = {}
    for qcl in subsumee.aggregate_outputs():
        call = qcl.expr
        translated_arg = (
            translator.translate(call.arg) if call.arg is not None else None
        )
        exact = match_aggregate_exact(call, translated_arg, agg_scope)
        if exact is None:
            return None
        agg_map[qcl.name] = exact

    from repro.expr.nodes import conjunction, disjunction

    slices = []
    for cuboid in chosen:
        slices.append(conjunction(_slicing_predicate(subsumer, cuboid)))
    comp = SelectBox(ctx.fresh_name("Sel"))
    comp.add_quantifier(MAIN, SubsumerRef(subsumer))
    for quantifier in rejoins:
        comp.add_quantifier(quantifier.name, quantifier.box)
    comp.predicates = [disjunction(slices)] + derived_preds
    for qcl in subsumee.outputs:
        if qcl.name in mapping:
            comp.add_output(
                QCL(qcl.name, ColumnRef(MAIN, mapping[qcl.name]), qcl.nullable)
            )
        else:
            comp.add_output(
                QCL(qcl.name, ColumnRef(MAIN, agg_map[qcl.name]), qcl.nullable)
            )
    return MatchResult(subsumee, subsumer, [comp], pattern="5.2")


# ----------------------------------------------------------------------
# 4.2.2: grouping child compensation (recursive matching)
# ----------------------------------------------------------------------
def _match_via_recursion(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    child_match: MatchResult,
    ctx: MatchContext,
) -> MatchResult | None:
    chain = child_match.chain
    gb_index = next(
        i for i, box in enumerate(chain) if isinstance(box, GroupByBox)
    )
    below = chain[:gb_index]
    lowest_gb = chain[gb_index]
    above = chain[gb_index + 1:]

    subsumer_child = subsumer.child_quantifier.box
    if below:
        synthetic = MatchResult(
            subsumee=below[-1],
            subsumer=subsumer_child,
            chain=below,
            pattern="synthetic",
        )
    else:
        leaf = lowest_gb.child_quantifier.box
        synthetic = MatchResult(
            subsumee=leaf,
            subsumer=subsumer_child,
            chain=[],
            column_map={name: name for name in subsumer_child.output_names},
            pattern="synthetic",
        )
    intermediate = match_groupby_boxes_with_child(
        lowest_gb, subsumer, synthetic, ctx
    )
    if intermediate is None:
        return None

    new_chain: list[QGMBox] = list(intermediate.chain)
    if intermediate.exact:
        # Align names with a thin projection so the copied boxes above can
        # keep referencing the lowest GROUP-BY's output names.
        projection = SelectBox(ctx.fresh_name("Sel"))
        projection.add_quantifier(MAIN, SubsumerRef(subsumer))
        for qcl in lowest_gb.outputs:
            projection.add_output(
                QCL(
                    qcl.name,
                    ColumnRef(MAIN, intermediate.column_map[qcl.name]),
                    qcl.nullable,
                )
            )
        new_chain = [projection]

    top: QGMBox = new_chain[-1]
    for box in above:
        clone = clone_chain_box(
            box,
            top,
            ctx.fresh_name("GB" if isinstance(box, GroupByBox) else "Sel"),
        )
        new_chain.append(clone)
        top = clone
    subsumee_copy = _clone_groupby_rebased(subsumee, top, ctx.fresh_name("GB"))
    new_chain.append(subsumee_copy)
    return MatchResult(subsumee, subsumer, new_chain, pattern="4.2.2")


def match_groupby_boxes_with_child(
    subsumee: GroupByBox,
    subsumer: GroupByBox,
    child_match: MatchResult,
    ctx: MatchContext,
) -> MatchResult | None:
    """Match two GROUP-BY boxes given an explicit child match (used by the
    4.2.2 recursion, where the child match is synthetic)."""
    if chain_has_grouping(child_match.chain):
        return None  # a second grouping level is resolved by the caller
    if subsumee.is_multidimensional and subsumer.is_multidimensional:
        return _match_cube_cube(subsumee, subsumer, child_match, ctx)
    if subsumee.is_multidimensional:
        t = _trace.ACTIVE
        if t is not None:
            t.reject(
                "regroupability", "4.2.2",
                "cube query over a simple AST inside the recursive pattern",
            )
        return None
    return _match_against_best_cuboid(subsumee, subsumer, child_match, ctx)


def _clone_groupby_rebased(
    box: GroupByBox, new_child: QGMBox, name: str
) -> GroupByBox:
    """Copy a query GROUP-BY box as a chain box: same grouping structure,
    child references re-qualified to MAIN."""
    old_qualifier = box.child_quantifier.name
    clone = GroupByBox(name, MAIN, new_child)
    clone.grouping_items = box.grouping_items
    clone.grouping_sets = box.grouping_sets

    def requalify(expr: Expr) -> Expr:
        def visit(node: Expr) -> Expr | None:
            if isinstance(node, ColumnRef) and node.qualifier == old_qualifier:
                return ColumnRef(MAIN, node.name)
            return None

        return expr.transform(visit)

    for qcl in box.outputs:
        clone.outputs.append(QCL(qcl.name, requalify(qcl.expr), qcl.nullable))
    return clone
